(** Recoverable ordered map — a B+-tree whose nodes, keys, and values all
    live in an {!Rvm_alloc.Rds} heap, so every structural mutation (split,
    merge, borrow) is exactly as atomic as the transaction it runs in: an
    abort rolls the tree back and a crash recovers it to the last committed
    shape.

    Keys and values are arbitrary strings ordered by [String.compare].
    Leaves hold the entries and are threaded into a next-leaf chain for
    ordered scans; internal nodes hold separator copies that never alias
    leaf cells. All [set_range] declarations are scoped to the exact slots
    touched (8-byte pointer moves, freshly allocated cells), never whole
    nodes, so the intra/inter-transaction optimizers see mergeable small
    ranges.

    Reads ([get]/[range]/[scan]/[iter]/[fold]/[check]) need no transaction.
    Mutations take the caller's [tid]; callers serialize access per tree
    (the server layer locks at leaf-node granularity). *)

type t

type stats = { mutable splits : int; mutable merges : int; mutable borrows : int }
(** Structural-operation counters for this handle (in-memory, reset at
    [create]/[attach]) — crash-explorer coverage evidence. *)

val create :
  Rvm_core.Rvm.t -> Rvm_alloc.Rds.t -> Rvm_core.Rvm.tid -> degree:int -> t
(** Allocate an empty tree in the heap, inside the given transaction.
    [degree] is the B-tree minimum degree [d >= 2]: nodes hold at most
    [2d-1] keys and non-root nodes at least [d-1]. *)

val attach : Rvm_core.Rvm.t -> Rvm_alloc.Rds.t -> addr:int -> t
(** Attach to a tree created earlier at [addr] (e.g. after a restart).
    Raises {!Rvm_core.Types.Rvm_error} if no tree signature is present. *)

val address : t -> int
(** Stable heap address of the tree header; pass to {!attach} after a
    restart. *)

val degree : t -> int
val length : t -> int

val get : t -> key:string -> string option
val mem : t -> key:string -> bool

val put : t -> Rvm_core.Rvm.tid -> key:string -> value:string -> unit
(** Insert or replace. Replacement allocates the new value cell before
    freeing the old, so an aborted transaction leaves the original value
    reachable. *)

val remove : t -> Rvm_core.Rvm.tid -> key:string -> bool
(** Delete [key]; returns whether it was present. Rebalances on the way
    down (borrow from a sibling, else merge), collapsing the root when it
    empties. *)

val range :
  t -> ?lo:string -> ?hi:string -> f:(key:string -> value:string -> unit) ->
  unit -> unit
(** Ordered scan over keys in [[lo, hi)] ([lo] inclusive, [hi] exclusive;
    each side unbounded when omitted), walking the leaf chain. *)

val scan : t -> ?lo:string -> n:int -> unit -> (string * string) list
(** First [n] entries with key [>= lo] (from the smallest key when [lo] is
    omitted), in order — the YCSB scan shape. *)

val iter : t -> f:(key:string -> value:string -> unit) -> unit
val fold : t -> init:'a -> f:('a -> key:string -> value:string -> 'a) -> 'a

val leaf_addr : t -> key:string -> int
(** Heap address of the leaf node that holds (or would hold) [key] — the
    server's lock-granularity unit. Stable across updates of resident keys;
    invalidated by splits/merges, which is why workloads that insert lock
    conservatively. *)

val check : t -> unit
(** Walk the whole tree verifying structural invariants: magic, node kinds,
    occupancy bounds, separator bounds ([lo <= key < hi] per subtree),
    strict in-node key order, uniform leaf depth, key count, and that the
    next-leaf chain threads the leaves exactly in key order. Raises
    {!Rvm_core.Types.Rvm_error} on any violation. *)

val stats : t -> stats
