module Rvm = Rvm_core.Rvm
module Types = Rvm_core.Types
module Rds = Rvm_alloc.Rds

(* Layout.
   Header (32 bytes, rds-allocated):
     +0  magic          "RVMBTRE1"
     +8  root node address
     +16 key count
     +24 minimum degree d (fixed at create time)
   Node (40 + 16*(2d-1) bytes, rds-allocated; M = 2d-1 max keys):
     +0  kind: 1 = leaf, 2 = internal
     +8  key count
     +16 next-leaf address (leaves only; 0 = rightmost)
     +24 reserved
     +32            .. +32+8M       key cell pointers
     +32+8M         .. +40+16M      leaf: value cell pointers (M slots)
                                    internal: child pointers (M+1 slots)
   Cell (rds-allocated): +0 byte length, +8 the bytes. Cells are immutable;
   replacing a value allocates the new cell before freeing the old, so an
   abort leaves the original reachable.

   Every mutation goes through [setw]/[alloc_cell], which declare exactly
   the touched bytes with set_range — a slot move is one 8-byte range, a
   node split is the handful of slots it shifts — so the intra- and
   inter-transaction optimizers see mergeable ranges, never whole nodes. *)

type stats = { mutable splits : int; mutable merges : int; mutable borrows : int }

type t = { rvm : Rvm.t; heap : Rds.t; addr : int; deg : int; stats : stats }

let magic = 0x52564D4254524531L (* "RVMBTRE1" *)
let header_size = 32
let leaf_kind = 1
let internal_kind = 2

let getw t addr = Int64.to_int (Rvm.get_i64 t.rvm ~addr)

let setw t tid addr v =
  Rvm.set_range t.rvm tid ~addr ~len:8;
  Rvm.set_i64 t.rvm ~addr (Int64.of_int v)

let max_keys t = (2 * t.deg) - 1
let min_keys t = t.deg - 1
let node_size t = 32 + (8 * max_keys t) + (8 * (max_keys t + 1))
let root t = getw t (t.addr + 8)
let set_root t tid n = setw t tid (t.addr + 8) n
let length t = getw t (t.addr + 16)
let bump_count t tid d = setw t tid (t.addr + 16) (length t + d)
let degree t = t.deg
let address t = t.addr
let stats t = t.stats

let is_leaf t n = getw t n = leaf_kind
let nkeys t n = getw t (n + 8)
let set_nkeys t tid n k = setw t tid (n + 8) k
let next_leaf t n = getw t (n + 16)
let set_next_leaf t tid n v = setw t tid (n + 16) v
let key_slot _t n i = n + 32 + (8 * i)
let ptr_slot t n i = n + 32 + (8 * max_keys t) + (8 * i)
let key_cell t n i = getw t (key_slot t n i)
let set_key t tid n i c = setw t tid (key_slot t n i) c
let ptr t n i = getw t (ptr_slot t n i)
let set_ptr t tid n i c = setw t tid (ptr_slot t n i) c

let cell_string t c =
  let len = getw t c in
  if len = 0 then "" else Bytes.to_string (Rvm.load t.rvm ~addr:(c + 8) ~len)

let alloc_cell t tid s =
  let len = String.length s in
  let c = Rds.alloc t.heap tid ~size:(8 + len) in
  setw t tid c len;
  if len > 0 then begin
    Rvm.set_range t.rvm tid ~addr:(c + 8) ~len;
    Rvm.store_string t.rvm ~addr:(c + 8) s
  end;
  c

let free_cell t tid c = Rds.free t.heap tid c
let node_key t n i = cell_string t (key_cell t n i)

let alloc_node t tid ~leaf =
  let n = Rds.alloc t.heap tid ~size:(node_size t) in
  setw t tid n (if leaf then leaf_kind else internal_kind);
  setw t tid (n + 8) 0;
  setw t tid (n + 16) 0;
  n

let fresh_stats () = { splits = 0; merges = 0; borrows = 0 }

let create rvm heap tid ~degree =
  if degree < 2 then Types.error "pbtree: minimum degree %d < 2" degree;
  let addr = Rds.alloc heap tid ~size:header_size in
  let t = { rvm; heap; addr; deg = degree; stats = fresh_stats () } in
  setw t tid addr (Int64.to_int magic);
  setw t tid (addr + 24) degree;
  let r = alloc_node t tid ~leaf:true in
  setw t tid (addr + 8) r;
  setw t tid (addr + 16) 0;
  t

let attach rvm heap ~addr =
  let t = { rvm; heap; addr; deg = 2; stats = fresh_stats () } in
  if getw t addr <> Int64.to_int magic then
    Types.error "pbtree: no tree at %#x" addr;
  { t with deg = getw t (addr + 24) }

(* First index in [0, nkeys) whose key is >= [key], flagging an exact hit. *)
(* Both searches are binary — at 10^6 keys the YCSB load phase does tens
   of millions of in-node comparisons, and each comparison reads a key
   cell through the engine. *)
let leaf_find t n ~key =
  let lo = ref 0 and hi = ref (nkeys t n) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare (node_key t n mid) key < 0 then lo := mid + 1 else hi := mid
  done;
  (!lo, !lo < nkeys t n && node_key t n !lo = key)

(* Child to descend into: separator i is the least key of child i+1's
   subtree, so keys >= separator route right. *)
let child_index t n ~key =
  let lo = ref 0 and hi = ref (nkeys t n) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare key (node_key t n mid) < 0 then hi := mid else lo := mid + 1
  done;
  !lo

let rec leaf_of t n ~key =
  if is_leaf t n then n else leaf_of t (ptr t n (child_index t n ~key)) ~key

let leaf_addr t ~key = leaf_of t (root t) ~key

let get t ~key =
  let n = leaf_of t (root t) ~key in
  let i, exact = leaf_find t n ~key in
  if exact then Some (cell_string t (ptr t n i)) else None

let mem t ~key = get t ~key <> None

(* --- insertion (preemptive split on the way down) --- *)

(* Wire separator [sep] and new child [right] into [parent] at separator
   position [ci]; [right] becomes child ci+1. The parent must not be full. *)
let insert_child_slot t tid parent ci ~sep ~right =
  let k = nkeys t parent in
  for j = k downto ci + 1 do
    set_key t tid parent j (key_cell t parent (j - 1))
  done;
  for j = k + 1 downto ci + 2 do
    set_ptr t tid parent j (ptr t parent (j - 1))
  done;
  set_key t tid parent ci sep;
  set_ptr t tid parent (ci + 1) right;
  set_nkeys t tid parent (k + 1)

let split_child t tid parent ci =
  let child = ptr t parent ci in
  let d = t.deg in
  (if is_leaf t child then begin
     (* Leaf split: left keeps d entries, right takes d-1. The separator is
        a fresh copy of the right node's first key (leaf entries never move
        up; a separator cell is owned by its internal node alone). *)
     let right = alloc_node t tid ~leaf:true in
     for i = 0 to d - 2 do
       set_key t tid right i (key_cell t child (d + i));
       set_ptr t tid right i (ptr t child (d + i))
     done;
     set_nkeys t tid right (d - 1);
     set_nkeys t tid child d;
     set_next_leaf t tid right (next_leaf t child);
     set_next_leaf t tid child right;
     let sep = alloc_cell t tid (node_key t right 0) in
     insert_child_slot t tid parent ci ~sep ~right
   end
   else begin
     (* Internal split: the median key's cell migrates up — pure pointer
        moves, no copies. *)
     let right = alloc_node t tid ~leaf:false in
     for i = 0 to d - 2 do
       set_key t tid right i (key_cell t child (d + i))
     done;
     for i = 0 to d - 1 do
       set_ptr t tid right i (ptr t child (d + i))
     done;
     set_nkeys t tid right (d - 1);
     let sep = key_cell t child (d - 1) in
     set_nkeys t tid child (d - 1);
     insert_child_slot t tid parent ci ~sep ~right
   end);
  t.stats.splits <- t.stats.splits + 1

let rec insert_nonfull t tid n ~key ~value =
  if is_leaf t n then begin
    let i, exact = leaf_find t n ~key in
    if exact then begin
      (* Replace: allocate the new cell before freeing the old one, so an
         abort finds the original still reachable from the restored slot. *)
      let old = ptr t n i in
      set_ptr t tid n i (alloc_cell t tid value);
      free_cell t tid old
    end
    else begin
      let k = nkeys t n in
      for j = k downto i + 1 do
        set_key t tid n j (key_cell t n (j - 1));
        set_ptr t tid n j (ptr t n (j - 1))
      done;
      set_key t tid n i (alloc_cell t tid key);
      set_ptr t tid n i (alloc_cell t tid value);
      set_nkeys t tid n (k + 1);
      bump_count t tid 1
    end
  end
  else begin
    let ci = child_index t n ~key in
    let ci =
      if nkeys t (ptr t n ci) = max_keys t then begin
        split_child t tid n ci;
        if compare key (node_key t n ci) >= 0 then ci + 1 else ci
      end
      else ci
    in
    insert_nonfull t tid (ptr t n ci) ~key ~value
  end

let put t tid ~key ~value =
  let r = root t in
  let r =
    if nkeys t r = max_keys t then begin
      let nr = alloc_node t tid ~leaf:false in
      set_ptr t tid nr 0 r;
      set_root t tid nr;
      split_child t tid nr 0;
      nr
    end
    else r
  in
  insert_nonfull t tid r ~key ~value

(* --- deletion (rebalance on the way down, CLRS style: never descend into
   a child at minimum occupancy) --- *)

let borrow_left t tid parent ci =
  let child = ptr t parent ci and left = ptr t parent (ci - 1) in
  let lk = nkeys t left and ck = nkeys t child in
  (if is_leaf t child then begin
     for j = ck downto 1 do
       set_key t tid child j (key_cell t child (j - 1));
       set_ptr t tid child j (ptr t child (j - 1))
     done;
     set_key t tid child 0 (key_cell t left (lk - 1));
     set_ptr t tid child 0 (ptr t left (lk - 1));
     set_nkeys t tid child (ck + 1);
     set_nkeys t tid left (lk - 1);
     (* The separator must become the moved key: fresh copy in, old out. *)
     let old_sep = key_cell t parent (ci - 1) in
     set_key t tid parent (ci - 1) (alloc_cell t tid (node_key t child 0));
     free_cell t tid old_sep
   end
   else begin
     (* Rotate through the parent: separator drops into the child, the
        left sibling's last key rises — cell pointers move, no copies. *)
     for j = ck downto 1 do
       set_key t tid child j (key_cell t child (j - 1))
     done;
     for j = ck + 1 downto 1 do
       set_ptr t tid child j (ptr t child (j - 1))
     done;
     set_key t tid child 0 (key_cell t parent (ci - 1));
     set_ptr t tid child 0 (ptr t left lk);
     set_key t tid parent (ci - 1) (key_cell t left (lk - 1));
     set_nkeys t tid child (ck + 1);
     set_nkeys t tid left (lk - 1)
   end);
  t.stats.borrows <- t.stats.borrows + 1

let borrow_right t tid parent ci =
  let child = ptr t parent ci and right = ptr t parent (ci + 1) in
  let rk = nkeys t right and ck = nkeys t child in
  (if is_leaf t child then begin
     set_key t tid child ck (key_cell t right 0);
     set_ptr t tid child ck (ptr t right 0);
     set_nkeys t tid child (ck + 1);
     for j = 0 to rk - 2 do
       set_key t tid right j (key_cell t right (j + 1));
       set_ptr t tid right j (ptr t right (j + 1))
     done;
     set_nkeys t tid right (rk - 1);
     let old_sep = key_cell t parent ci in
     set_key t tid parent ci (alloc_cell t tid (node_key t right 0));
     free_cell t tid old_sep
   end
   else begin
     set_key t tid child ck (key_cell t parent ci);
     set_ptr t tid child (ck + 1) (ptr t right 0);
     set_key t tid parent ci (key_cell t right 0);
     for j = 0 to rk - 2 do
       set_key t tid right j (key_cell t right (j + 1))
     done;
     for j = 0 to rk - 1 do
       set_ptr t tid right j (ptr t right (j + 1))
     done;
     set_nkeys t tid child (ck + 1);
     set_nkeys t tid right (rk - 1)
   end);
  t.stats.borrows <- t.stats.borrows + 1

(* Merge child ci with its right sibling; the separator between them
   leaves the parent (into the merged node for internal levels, freed for
   leaves). Returns the merged node, which sits at child index ci. *)
let merge_children t tid parent ci =
  let child = ptr t parent ci and right = ptr t parent (ci + 1) in
  let ck = nkeys t child and rk = nkeys t right in
  let sep = key_cell t parent ci in
  (if is_leaf t child then begin
     for i = 0 to rk - 1 do
       set_key t tid child (ck + i) (key_cell t right i);
       set_ptr t tid child (ck + i) (ptr t right i)
     done;
     set_nkeys t tid child (ck + rk);
     set_next_leaf t tid child (next_leaf t right);
     free_cell t tid sep
   end
   else begin
     set_key t tid child ck sep;
     for i = 0 to rk - 1 do
       set_key t tid child (ck + 1 + i) (key_cell t right i)
     done;
     for i = 0 to rk do
       set_ptr t tid child (ck + 1 + i) (ptr t right i)
     done;
     set_nkeys t tid child (ck + 1 + rk)
   end);
  Rds.free t.heap tid right;
  let pk = nkeys t parent in
  for j = ci to pk - 2 do
    set_key t tid parent j (key_cell t parent (j + 1))
  done;
  for j = ci + 1 to pk - 1 do
    set_ptr t tid parent j (ptr t parent (j + 1))
  done;
  set_nkeys t tid parent (pk - 1);
  t.stats.merges <- t.stats.merges + 1;
  child

(* Grow child ci above minimum occupancy before descending into it.
   Returns the node to descend into (the merge cases change it). *)
let fix_child t tid parent ci =
  let k = nkeys t parent in
  if ci > 0 && nkeys t (ptr t parent (ci - 1)) > min_keys t then begin
    borrow_left t tid parent ci;
    ptr t parent ci
  end
  else if ci < k && nkeys t (ptr t parent (ci + 1)) > min_keys t then begin
    borrow_right t tid parent ci;
    ptr t parent ci
  end
  else if ci < k then merge_children t tid parent ci
  else merge_children t tid parent (ci - 1)

let rec delete_from t tid n ~key =
  if is_leaf t n then begin
    let i, exact = leaf_find t n ~key in
    if not exact then false
    else begin
      let k = nkeys t n in
      free_cell t tid (key_cell t n i);
      free_cell t tid (ptr t n i);
      for j = i to k - 2 do
        set_key t tid n j (key_cell t n (j + 1));
        set_ptr t tid n j (ptr t n (j + 1))
      done;
      set_nkeys t tid n (k - 1);
      bump_count t tid (-1);
      true
    end
  end
  else begin
    let ci = child_index t n ~key in
    let c = ptr t n ci in
    let c = if nkeys t c <= min_keys t then fix_child t tid n ci else c in
    delete_from t tid c ~key
  end

let remove t tid ~key =
  let found = delete_from t tid (root t) ~key in
  let r = root t in
  if (not (is_leaf t r)) && nkeys t r = 0 then begin
    (* The last merge emptied the root: the tree loses a level. *)
    set_root t tid (ptr t r 0);
    Rds.free t.heap tid r
  end;
  found

(* --- ordered iteration over the leaf chain --- *)

let rec leftmost t n = if is_leaf t n then n else leftmost t (ptr t n 0)

(* Call [f] on entries in key order starting at the first key >= [lo],
   until it returns false or the chain ends. *)
let iter_ge t ~lo ~f =
  let n0, i0 =
    match lo with
    | None -> (leftmost t (root t), 0)
    | Some key ->
      let n = leaf_of t (root t) ~key in
      let i, _ = leaf_find t n ~key in
      (n, i)
  in
  let rec go n i =
    if n = 0 then ()
    else if i >= nkeys t n then go (next_leaf t n) 0
    else if f ~key:(node_key t n i) ~value:(cell_string t (ptr t n i)) then
      go n (i + 1)
  in
  go n0 i0

let range t ?lo ?hi ~f () =
  iter_ge t ~lo ~f:(fun ~key ~value ->
      match hi with
      | Some h when compare key h >= 0 -> false
      | _ ->
        f ~key ~value;
        true)

let scan t ?lo ~n () =
  if n <= 0 then []
  else begin
    let acc = ref [] in
    let left = ref n in
    iter_ge t ~lo ~f:(fun ~key ~value ->
        acc := (key, value) :: !acc;
        decr left;
        !left > 0);
    List.rev !acc
  end

let iter t ~f =
  iter_ge t ~lo:None ~f:(fun ~key ~value ->
      f ~key ~value;
      true)

let fold t ~init ~f =
  let acc = ref init in
  iter t ~f:(fun ~key ~value -> acc := f !acc ~key ~value);
  !acc

(* --- invariant walker --- *)

let check t =
  if getw t t.addr <> Int64.to_int magic then
    Types.error "pbtree-check: bad magic";
  if getw t (t.addr + 24) <> t.deg || t.deg < 2 then
    Types.error "pbtree-check: bad degree %d" (getw t (t.addr + 24));
  let leaves = ref [] in
  let count = ref 0 in
  let leaf_depth = ref (-1) in
  let in_bounds ~lo ~hi key =
    (match lo with Some l -> compare key l >= 0 | None -> true)
    && match hi with Some h -> compare key h < 0 | None -> true
  in
  let rec walk n ~lo ~hi ~depth ~at_root =
    if Rds.usable_size t.heap n < node_size t then
      Types.error "pbtree-check: node %#x smaller than a node" n;
    let kind = getw t n in
    if kind <> leaf_kind && kind <> internal_kind then
      Types.error "pbtree-check: bad kind %d at %#x" kind n;
    let k = nkeys t n in
    if k > max_keys t then Types.error "pbtree-check: overfull node %#x" n;
    if (not at_root) && k < min_keys t then
      Types.error "pbtree-check: underfull node %#x (%d keys)" n k;
    if at_root && kind = internal_kind && k < 1 then
      Types.error "pbtree-check: keyless internal root %#x" n;
    let prev = ref None in
    for i = 0 to k - 1 do
      let key = node_key t n i in
      if not (in_bounds ~lo ~hi key) then
        Types.error "pbtree-check: key out of bounds in %#x" n;
      (match !prev with
      | Some p when compare p key >= 0 ->
        Types.error "pbtree-check: keys not strictly increasing in %#x" n
      | _ -> ());
      prev := Some key
    done;
    if kind = leaf_kind then begin
      if !leaf_depth = -1 then leaf_depth := depth
      else if !leaf_depth <> depth then
        Types.error "pbtree-check: leaf %#x at depth %d, expected %d" n depth
          !leaf_depth;
      count := !count + k;
      leaves := n :: !leaves
    end
    else
      for i = 0 to k do
        let c = ptr t n i in
        if c = 0 then Types.error "pbtree-check: null child %d of %#x" i n;
        let clo = if i = 0 then lo else Some (node_key t n (i - 1)) in
        let chi = if i = k then hi else Some (node_key t n i) in
        walk c ~lo:clo ~hi:chi ~depth:(depth + 1) ~at_root:false
      done
  in
  walk (root t) ~lo:None ~hi:None ~depth:0 ~at_root:true;
  if !count <> length t then
    Types.error "pbtree-check: count %d but %d keys reachable" (length t) !count;
  (* The next-leaf chain must thread the leaves exactly in key order. *)
  let rec chain = function
    | a :: (b :: _ as rest) ->
      if next_leaf t a <> b then
        Types.error "pbtree-check: leaf chain broken at %#x" a;
      chain rest
    | [ last ] ->
      if next_leaf t last <> 0 then
        Types.error "pbtree-check: rightmost leaf %#x has a successor" last
    | [] -> ()
  in
  chain (List.rev !leaves)
