type t = { name : string; mutable value : int }

let v name = { name; value = 0 }
let name t = t.name
let incr t = t.value <- t.value + 1
let add t n = t.value <- t.value + n
let get t = t.value
let reset t = t.value <- 0
