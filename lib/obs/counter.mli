(** A named monotonic counter. Obtain instances through
    {!Registry.counter} so snapshots and resets see them; the handle itself
    is a plain mutable cell, cheap enough for per-I/O hot paths. *)

type t

val v : string -> t
(** A free-standing counter (not attached to any registry). *)

val name : t -> string
val incr : t -> unit
val add : t -> int -> unit
val get : t -> int
val reset : t -> unit
