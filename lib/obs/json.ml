type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* Shortest representation that round-trips is overkill here; %.12g is
       compact and JSON-valid for every finite double. *)
    Printf.sprintf "%.12g" f

let rec emit ~indent ~level buf t =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep () = Buffer.add_string buf (if indent then ",\n" else ",") in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf (if indent then "[\n" else "[");
    List.iteri
      (fun i item ->
        if i > 0 then sep ();
        pad (level + 1);
        emit ~indent ~level:(level + 1) buf item)
      items;
    if indent then Buffer.add_char buf '\n';
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj members ->
    Buffer.add_string buf (if indent then "{\n" else "{");
    List.iteri
      (fun i (k, v) ->
        if i > 0 then sep ();
        pad (level + 1);
        escape buf k;
        Buffer.add_string buf (if indent then ": " else ":");
        emit ~indent ~level:(level + 1) buf v)
      members;
    if indent then Buffer.add_char buf '\n';
    pad level;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  emit ~indent:false ~level:0 buf t;
  Buffer.contents buf

let to_string_pretty t =
  let buf = Buffer.create 256 in
  emit ~indent:true ~level:0 buf t;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let write_file ~path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string_pretty t));
  Sys.rename tmp path
