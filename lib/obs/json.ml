type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* Shortest representation that round-trips is overkill here; %.12g is
       compact and JSON-valid for every finite double. *)
    Printf.sprintf "%.12g" f

let rec emit ~indent ~level buf t =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep () = Buffer.add_string buf (if indent then ",\n" else ",") in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf (if indent then "[\n" else "[");
    List.iteri
      (fun i item ->
        if i > 0 then sep ();
        pad (level + 1);
        emit ~indent ~level:(level + 1) buf item)
      items;
    if indent then Buffer.add_char buf '\n';
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj members ->
    Buffer.add_string buf (if indent then "{\n" else "{");
    List.iteri
      (fun i (k, v) ->
        if i > 0 then sep ();
        pad (level + 1);
        escape buf k;
        Buffer.add_string buf (if indent then ": " else ":");
        emit ~indent ~level:(level + 1) buf v)
      members;
    if indent then Buffer.add_char buf '\n';
    pad level;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  emit ~indent:false ~level:0 buf t;
  Buffer.contents buf

let to_string_pretty t =
  let buf = Buffer.create 256 in
  emit ~indent:true ~level:0 buf t;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- parsing ---

   Recursive-descent over the same subset the printer emits (which is all
   of JSON minus surrogate-pair escapes). Exists so tools can read their
   own artifacts back — the CI baseline gate parses BENCH_baseline.json,
   tests parse exported Chrome traces — still without a dependency. *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
        incr pos;
        Buffer.contents buf
      | '\\' ->
        incr pos;
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
          | Some code -> add_utf8 buf code
          | None -> fail "bad \\u escape");
          pos := !pos + 4
        | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        incr pos;
        go ()
      | c ->
        Buffer.add_char buf c;
        incr pos;
        go ()
    in
    go ()
  in
  let digits () =
    let start = !pos in
    while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
      incr pos
    done;
    if !pos = start then fail "expected digit"
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      incr pos;
      (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
      digits ()
    | _ -> ());
    let str = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string str)
    else
      match int_of_string_opt str with
      | Some i -> Int i
      | None -> Float (float_of_string str)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let members = ref [] in
        let rec member () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          members := (k, v) :: !members;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            member ()
          | Some '}' -> incr pos
          | _ -> fail "expected ',' or '}'"
        in
        member ();
        Obj (List.rev !members)
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let items = ref [] in
        let rec item () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            item ()
          | Some ']' -> incr pos
          | _ -> fail "expected ',' or ']'"
        in
        item ();
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

let read_file ~path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string s

let member name = function Obj l -> List.assoc_opt name l | _ -> None

let write_file ~path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string_pretty t));
  Sys.rename tmp path
