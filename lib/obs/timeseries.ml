(* Windowed aggregation over a Registry: cumulative counters become
   per-window deltas/rates, cumulative histograms become per-window
   sub-bucketed quantiles, and registered gauges are sampled at each
   window close. Windows are keyed by the (simulated) clock handed to
   [tick] and kept in a bounded ring. *)

type window = {
  index : int;
  t0_us : float;
  t1_us : float;
  counters : (string * int) list;
  hists : (string * Histogram.window_stats) list;
  gauges : (string * float) list;
}

type t = {
  reg : Registry.t;
  window_us : float;
  capacity : int;
  mutable epoch_us : float;
  mutable started : bool;
  mutable completed : int;
  ring : window Queue.t;
  mutable last_closed : window option;
  counter_cursors : (string, int ref) Hashtbl.t;
  hist_cursors : (string, Histogram.snapshot) Hashtbl.t;
  mutable gauge_fns : (string * (unit -> float)) list;
}

let create ?(capacity = 512) ~window_us reg =
  if window_us <= 0. then invalid_arg "Timeseries.create: window_us <= 0";
  if capacity <= 0 then invalid_arg "Timeseries.create: capacity <= 0";
  {
    reg;
    window_us;
    capacity;
    epoch_us = 0.;
    started = false;
    completed = 0;
    ring = Queue.create ();
    last_closed = None;
    counter_cursors = Hashtbl.create 32;
    hist_cursors = Hashtbl.create 16;
    gauge_fns = [];
  }

let window_us t = t.window_us

let gauge t name f =
  if not (List.mem_assoc name t.gauge_fns) then
    t.gauge_fns <- t.gauge_fns @ [ (name, f) ]

(* Close the window ending now: counter deltas and histogram window
   stats since the previous close (cursors start at zero, so activity
   preceding a metric's first sighting lands in its first window). *)
let close_window t ~t0_us ~t1_us =
  let counters =
    List.filter_map
      (fun (name, v) ->
        let prev =
          match Hashtbl.find_opt t.counter_cursors name with
          | Some r -> r
          | None ->
            let r = ref 0 in
            Hashtbl.add t.counter_cursors name r;
            r
        in
        let d = v - !prev in
        prev := v;
        if d = 0 then None else Some (name, d))
      (Registry.counters t.reg)
  in
  let hists =
    List.filter_map
      (fun (name, h) ->
        let cur =
          match Hashtbl.find_opt t.hist_cursors name with
          | Some c -> c
          | None ->
            let c = Histogram.zero_snapshot () in
            Hashtbl.add t.hist_cursors name c;
            c
        in
        let w = Histogram.advance h cur in
        if w.Histogram.w_count = 0 then None else Some (name, w))
      (Registry.histograms t.reg)
  in
  let gauges = List.map (fun (name, f) -> (name, f ())) t.gauge_fns in
  let w = { index = t.completed; t0_us; t1_us; counters; hists; gauges } in
  t.completed <- t.completed + 1;
  Queue.push w t.ring;
  t.last_closed <- Some w;
  if Queue.length t.ring > t.capacity then ignore (Queue.pop t.ring);
  w

let tick t ~now_us =
  if not t.started then begin
    t.started <- true;
    t.epoch_us <- now_us
  end;
  let target =
    int_of_float (Float.floor ((now_us -. t.epoch_us) /. t.window_us))
  in
  if target <= t.completed then []
  else begin
    (* A huge clock jump (idle gap, end-of-run drain) would materialize
       millions of empty windows; skip ahead so at most a ring's worth
       is closed — the skipped empties would have been evicted anyway. *)
    if target - t.completed > t.capacity then
      t.completed <- target - t.capacity;
    let closed = ref [] in
    while t.completed < target do
      let t0 = t.epoch_us +. (float_of_int t.completed *. t.window_us) in
      let t1 = t0 +. t.window_us in
      closed := close_window t ~t0_us:t0 ~t1_us:t1 :: !closed
    done;
    List.rev !closed
  end

(* End-of-run: close every elapsed full window plus a final partial one
   so trailing activity is never dropped from the series. *)
let flush t ~now_us =
  if not t.started then []
  else begin
    let closed = tick t ~now_us in
    let t0 = t.epoch_us +. (float_of_int t.completed *. t.window_us) in
    if now_us > t0 then closed @ [ close_window t ~t0_us:t0 ~t1_us:now_us ]
    else closed
  end

let windows t = List.of_seq (Queue.to_seq t.ring)
let last t = t.last_closed
let completed t = t.completed

(* {2 Window accessors} *)

let counter_delta w name =
  match List.assoc_opt name w.counters with Some d -> d | None -> 0

let rate w name =
  let dt_s = (w.t1_us -. w.t0_us) /. 1e6 in
  if dt_s <= 0. then 0. else float_of_int (counter_delta w name) /. dt_s

let hist_stats w name = List.assoc_opt name w.hists
let gauge_value w name = List.assoc_opt name w.gauges

(* {2 JSON} *)

let window_json w =
  let open Json in
  let hist_json (name, (s : Histogram.window_stats)) =
    ( name,
      Obj
        [
          ("count", Int s.Histogram.w_count);
          ("sum", Float s.Histogram.w_sum);
          ("p50", Float s.Histogram.w_p50);
          ("p95", Float s.Histogram.w_p95);
          ("p99", Float s.Histogram.w_p99);
          ("max", Float s.Histogram.w_max);
        ] )
  in
  Obj
    [
      ("index", Int w.index);
      ("t0_us", Float w.t0_us);
      ("t1_us", Float w.t1_us);
      ("counters", Obj (List.map (fun (k, v) -> (k, Int v)) w.counters));
      ("histograms", Obj (List.map hist_json w.hists));
      ("gauges", Obj (List.map (fun (k, v) -> (k, Float v)) w.gauges));
    ]

let to_json t =
  let open Json in
  Obj
    [
      ("window_us", Float t.window_us);
      ("windows_closed", Int t.completed);
      ("windows", List (List.map window_json (windows t)));
    ]
