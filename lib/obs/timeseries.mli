(** Windowed telemetry over a {!Registry}.

    The registry's counters and histograms accumulate for a whole run; a
    timeseries slices them onto a timeline. Each {!tick} (driven from
    the scheduler's quantum loop, so every layer reports on the same
    simulated clock) closes the windows that have elapsed since the last
    call: every counter becomes a per-window delta (and {!rate}), every
    histogram a per-window sub-bucketed p50/p95/p99 via
    {!Histogram.advance}, and every registered gauge is sampled at the
    window close. Closed windows live in a bounded ring, oldest evicted
    first. *)

type window = {
  index : int;  (** 0-based window number since the first tick *)
  t0_us : float;
  t1_us : float;
  counters : (string * int) list;  (** per-window deltas, zeros omitted *)
  hists : (string * Histogram.window_stats) list;  (** empties omitted *)
  gauges : (string * float) list;  (** sampled at [t1_us] *)
}

type t

val create : ?capacity:int -> window_us:float -> Registry.t -> t
(** [capacity] (default 512) bounds the retained ring. Raises
    [Invalid_argument] on a non-positive window or capacity. *)

val window_us : t -> float

val gauge : t -> string -> (unit -> float) -> unit
(** Register a gauge sampled at every window close (spool pressure, LSN
    horizons, log occupancy...). Idempotent per name. *)

val tick : t -> now_us:float -> window list
(** Close every window that has fully elapsed at [now_us]; returns them
    oldest first ([[]] almost always — ticks are much more frequent than
    window closes). The first call pins the window epoch. After a clock
    jump longer than the whole ring, the leading all-empty windows are
    skipped rather than materialized. *)

val flush : t -> now_us:float -> window list
(** End-of-run [tick] plus a final partial window covering the tail. *)

val windows : t -> window list
(** Retained ring, oldest first. *)

val last : t -> window option
val completed : t -> int

val counter_delta : window -> string -> int
(** 0 when absent. *)

val rate : window -> string -> float
(** Counter delta per second of window. *)

val hist_stats : window -> string -> Histogram.window_stats option
val gauge_value : window -> string -> float option
val window_json : window -> Json.t
val to_json : t -> Json.t
