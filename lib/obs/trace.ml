type value =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

type span = {
  id : int;
  parent : int option;
  scope : string;
  start_us : float;
  dur_us : float;
  attrs : (string * value) list;
}

type frame = {
  f_id : int;
  f_parent : int option;
  f_scope : string;
  f_start : float;
  mutable f_attrs : (string * value) list;  (* newest first *)
}

(* Spans live in a power-agnostic circular array indexed by their global
   sequence number: span [g] sits at slot [g mod cap], so the retained
   window is always [seq - len, seq) in insertion order and readers never
   re-sort or re-reverse anything. *)
type t = {
  mutable ring : span array;
  mutable cap : int;
  mutable len : int;  (* retained spans, <= cap *)
  mutable seq : int;  (* spans ever finished (recorded or not) *)
  mutable next_id : int;
  mutable stack : frame list;  (* open spans, innermost first *)
}

let dummy =
  { id = 0; parent = None; scope = ""; start_us = 0.; dur_us = 0.; attrs = [] }

let create ?(capacity = 0) () =
  let capacity = max capacity 0 in
  {
    ring = Array.make capacity dummy;
    cap = capacity;
    len = 0;
    seq = 0;
    next_id = 1;
    stack = [];
  }

let capacity t = t.cap
let seq t = t.seq
let length t = t.len
let depth t = List.length t.stack

let set_capacity t n =
  let n = max n 0 in
  let keep = min t.len n in
  let ring = Array.make n dummy in
  for i = 0 to keep - 1 do
    let g = t.seq - keep + i in
    ring.(g mod n) <- t.ring.(g mod t.cap)
  done;
  t.ring <- ring;
  t.cap <- n;
  t.len <- keep

let record t span =
  if t.cap > 0 then begin
    t.ring.(t.seq mod t.cap) <- span;
    if t.len < t.cap then t.len <- t.len + 1
  end;
  t.seq <- t.seq + 1

let current t = match t.stack with [] -> None | f :: _ -> Some f.f_id

let enter t ~now ?(attrs = []) scope =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.stack <-
    {
      f_id = id;
      f_parent = current t;
      f_scope = scope;
      f_start = now;
      f_attrs = List.rev attrs;
    }
    :: t.stack

let add_attr t key v =
  match t.stack with
  | [] -> ()
  | f :: _ -> f.f_attrs <- (key, v) :: f.f_attrs

let exit t ~now =
  match t.stack with
  | [] -> invalid_arg "Trace.exit: no open span"
  | f :: rest ->
    t.stack <- rest;
    let span =
      {
        id = f.f_id;
        parent = f.f_parent;
        scope = f.f_scope;
        start_us = f.f_start;
        dur_us = now -. f.f_start;
        attrs = List.rev f.f_attrs;
      }
    in
    record t span;
    span

let instant t ~now ?(attrs = []) scope =
  let id = t.next_id in
  t.next_id <- id + 1;
  record t
    { id; parent = current t; scope; start_us = now; dur_us = 0.; attrs }

let events_since t since =
  let lo = max since (t.seq - t.len) in
  let acc = ref [] in
  for g = t.seq - 1 downto lo do
    acc := t.ring.(g mod t.cap) :: !acc
  done;
  (!acc, t.seq)

let events t = fst (events_since t 0)

let clear t = t.len <- 0

let pp_value ppf = function
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | String s -> Format.pp_print_string ppf s

let pp_span ppf s =
  Format.fprintf ppf "#%d" s.id;
  (match s.parent with
  | Some p -> Format.fprintf ppf "<#%d" p
  | None -> ());
  Format.fprintf ppf " %s @%.1f +%.1fus" s.scope s.start_us s.dur_us;
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%a" k pp_value v) s.attrs
