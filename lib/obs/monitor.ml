(* Declarative SLO monitoring over a Timeseries: rules probe each closed
   window, hysteresis (open_after / close_after consecutive windows)
   turns sustained breaches into typed incidents, and each incident
   captures its triggering windows plus a flight-recorder tail. A run
   ends with a postmortem JSON document; healthy runs produce zero
   incidents. *)

type severity = Warn | Page

let severity_to_string = function Warn -> "warn" | Page -> "page"

type verdict = Healthy | Breach of string

type rule = {
  name : string;
  severity : severity;
  open_after : int;
  close_after : int;
  probe : Timeseries.window -> verdict;
}

type incident = {
  i_rule : string;
  i_severity : severity;
  opened_at_us : float;
  mutable closed_at_us : float option;
  mutable i_windows : Timeseries.window list;  (* breaching, oldest first *)
  mutable i_reasons : string list;  (* one per retained window *)
  flight_recorder : Trace.span list;  (* tail at open, oldest first *)
}

type state = {
  s_rule : rule;
  mutable breach_streak : int;
  mutable ok_streak : int;
  mutable pending : (Timeseries.window * string) list;
      (* breaching windows seen before the streak reaches [open_after];
         seeded into the incident when it opens so the report shows the
         whole streak, not just its tail *)
  mutable open_inc : incident option;
}

type t = {
  ts : Timeseries.t;
  reg : Registry.t;
  states : state list;
  mutable incidents : incident list;  (* newest first *)
  max_incident_windows : int;
  tail_len : int;
}

(* {2 Rule constructors}

   Metric names default to the transaction server's registry schema;
   every constructor takes the names as parameters so other harnesses
   can reuse the rule shapes. *)

let rule ?(severity = Page) ?(open_after = 2) ?(close_after = 3) name probe =
  if open_after <= 0 || close_after <= 0 then
    invalid_arg "Monitor.rule: streaks must be positive";
  { name; severity; open_after; close_after; probe }

(* Commit p99 against a rolling (EMA) baseline of healthy windows: the
   baseline learns during [warmup] windows with traffic, then freezes
   whenever the window breaches so an incident cannot drag its own
   threshold up. [floor_us] suppresses noise when everything is fast. *)
let commit_latency_rule ?(hist = "server.latency.us") ?(ratio = 3.)
    ?(floor_us = 0.) ?(min_count = 8) ?(warmup = 3) () =
  let baseline = ref 0. and warm = ref 0 in
  let learn p99 =
    if !warm = 0 then baseline := p99
    else baseline := (0.7 *. !baseline) +. (0.3 *. p99);
    if !warm < warmup then incr warm
  in
  rule "commit-p99-burst" ~severity:Page (fun w ->
      match Timeseries.hist_stats w hist with
      | None -> Healthy
      | Some s when s.Histogram.w_count < min_count -> Healthy
      | Some s ->
        let p99 = s.Histogram.w_p99 in
        if !warm < warmup then begin
          learn p99;
          Healthy
        end
        else begin
          let limit = Float.max floor_us (ratio *. !baseline) in
          if p99 > limit then
            Breach
              (Printf.sprintf
                 "window p99 %.0fus exceeds %.1fx rolling baseline %.0fus"
                 p99 ratio !baseline)
          else begin
            learn p99;
            Healthy
          end
        end)

let abort_rate_rule ?(committed = "server.committed")
    ?(retried = "server.retry") ?(max_rate = 0.5) ?(min_ops = 16) () =
  rule "abort-rate" ~severity:Page (fun w ->
      let c = Timeseries.counter_delta w committed in
      let r = Timeseries.counter_delta w retried in
      let ops = c + r in
      if ops < min_ops then Healthy
      else
        let rate = float_of_int r /. float_of_int ops in
        if rate > max_rate then
          Breach
            (Printf.sprintf "abort rate %.2f (%d retries / %d ops)" rate r ops)
        else Healthy)

(* Admission control shedding a sustained fraction of arrivals is the
   server's overload signature: past the saturation knee the scheduler
   stays internally healthy precisely because admission turns the excess
   away, so the SLO breach lives in the shed counter, not the latency
   histogram. *)
let shed_rate_rule ?(shed = "server.shed") ?(committed = "server.committed")
    ?(max_rate = 0.25) ?(min_arrivals = 16) () =
  rule "admission-shed" ~severity:Page (fun w ->
      let s = Timeseries.counter_delta w shed in
      let c = Timeseries.counter_delta w committed in
      let arrivals = s + c in
      if arrivals < min_arrivals then Healthy
      else
        let rate = float_of_int s /. float_of_int arrivals in
        if rate > max_rate then
          Breach
            (Printf.sprintf "shed rate %.2f (%d shed / %d arrivals)" rate s
               arrivals)
        else Healthy)

let spool_pressure_rule ?(gauge = "spool.pressure") ?(watermark = 0.9) () =
  rule "spool-pressure" ~severity:Warn (fun w ->
      match Timeseries.gauge_value w gauge with
      | Some p when p >= watermark ->
        Breach
          (Printf.sprintf "spool pressure %.2f at/above watermark %.2f" p
             watermark)
      | _ -> Healthy)

(* Truncation is due but no truncation work ran for the whole window —
   the background state machine is starved. *)
let truncation_starvation_rule ?(due = "truncation.due")
    ?(steps =
      [
        "truncation.epoch.count";
        "truncation.incremental.step.count";
        "truncation.emergency.count";
      ]) () =
  rule "truncation-starvation" ~severity:Page ~open_after:3 (fun w ->
      match Timeseries.gauge_value w due with
      | Some d when d >= 0.5 ->
        let work =
          List.fold_left (fun a n -> a + Timeseries.counter_delta w n) 0 steps
        in
        if work = 0 then
          Breach "truncation due but zero truncation steps ran this window"
        else Healthy
      | _ -> Healthy)

(* The durable-LSN horizon must keep moving while commits are ahead of
   it; a frozen horizon with a positive gap means nothing is reaching
   the disk. *)
let durable_stall_rule ?(commit = "lsn.commit") ?(durable = "lsn.durable") () =
  let prev = ref neg_infinity in
  rule "durable-lsn-stall" ~severity:Page (fun w ->
      match (Timeseries.gauge_value w commit, Timeseries.gauge_value w durable)
      with
      | Some c, Some d ->
        let stalled = d = !prev && c > d in
        prev := d;
        if stalled then
          Breach
            (Printf.sprintf
               "durable LSN stuck at %.0f while commit LSN is %.0f" d c)
        else Healthy
      | _ -> Healthy)

(* Per-shard committed deltas: one shard racing ahead of (or starving
   behind) the others means routing skew is defeating the sharding. *)
let shard_imbalance_rule ?(prefix = "shard.") ?(suffix = ".committed")
    ?(shards = 0) ?(max_skew = 4.) ?(min_per_window = 8) () =
  rule "shard-imbalance" ~severity:Warn (fun w ->
      if shards < 2 then Healthy
      else begin
        let deltas =
          List.init shards (fun i ->
              Timeseries.counter_delta w
                (prefix ^ string_of_int i ^ suffix))
        in
        let total = List.fold_left ( + ) 0 deltas in
        if total < min_per_window * shards then Healthy
        else
          let mx = List.fold_left max min_int deltas in
          let mn = List.fold_left min max_int deltas in
          let skewed =
            if mn = 0 then mx >= min_per_window
            else float_of_int mx /. float_of_int mn > max_skew
          in
          if skewed then
            Breach
              (Printf.sprintf
                 "per-shard committed deltas %s skew beyond %.1fx"
                 (String.concat "/" (List.map string_of_int deltas))
                 max_skew)
          else Healthy
      end)

let default_rules ?(shards = 1) () =
  [
    commit_latency_rule ();
    abort_rate_rule ();
    shed_rate_rule ();
    spool_pressure_rule ();
    truncation_starvation_rule ();
    durable_stall_rule ();
  ]
  @ (if shards > 1 then [ shard_imbalance_rule ~shards () ] else [])

(* {2 Monitor} *)

let create ?(max_incident_windows = 16) ?(tail_len = 16) ~rules ts reg =
  {
    ts;
    reg;
    states =
      List.map
        (fun r ->
          {
            s_rule = r;
            breach_streak = 0;
            ok_streak = 0;
            pending = [];
            open_inc = None;
          })
        rules;
    incidents = [];
    max_incident_windows;
    tail_len;
  }

let timeseries t = t.ts

let flight_tail t =
  let evs = Registry.events t.reg in
  let n = List.length evs in
  let rec drop k l =
    if k <= 0 then l else match l with [] -> [] | _ :: r -> drop (k - 1) r
  in
  drop (n - t.tail_len) evs

let eval_window t (w : Timeseries.window) =
  List.iter
    (fun s ->
      match s.s_rule.probe w with
      | Breach reason ->
        s.breach_streak <- s.breach_streak + 1;
        s.ok_streak <- 0;
        let inc =
          match s.open_inc with
          | Some inc -> Some inc
          | None when s.breach_streak >= s.s_rule.open_after ->
            let streak = List.rev s.pending in
            let opened_at_us =
              match streak with
              | (first, _) :: _ -> first.Timeseries.t0_us
              | [] -> w.Timeseries.t0_us
            in
            let inc =
              {
                i_rule = s.s_rule.name;
                i_severity = s.s_rule.severity;
                opened_at_us;
                closed_at_us = None;
                i_windows = List.map fst streak;
                i_reasons = List.map snd streak;
                flight_recorder = flight_tail t;
              }
            in
            s.pending <- [];
            t.incidents <- inc :: t.incidents;
            Some inc
          | None ->
            s.pending <- (w, reason) :: s.pending;
            None
        in
        (match inc with
        | Some inc ->
          s.open_inc <- Some inc;
          if List.length inc.i_windows < t.max_incident_windows then begin
            inc.i_windows <- inc.i_windows @ [ w ];
            inc.i_reasons <- inc.i_reasons @ [ reason ]
          end
        | None -> ())
      | Healthy ->
        s.ok_streak <- s.ok_streak + 1;
        s.breach_streak <- 0;
        s.pending <- [];
        (match s.open_inc with
        | Some inc when s.ok_streak >= s.s_rule.close_after ->
          inc.closed_at_us <- Some w.Timeseries.t0_us;
          s.open_inc <- None
        | _ -> ()))
    t.states

let tick t ~now_us =
  let closed = Timeseries.tick t.ts ~now_us in
  List.iter (eval_window t) closed;
  closed

(* End of run: evaluate the final (partial) window, then mark incidents
   still open as closed-by-end-of-run (their [closed_at_us] stays [None]
   in the report, distinguishing "resolved" from "open at exit"). *)
let finish t ~now_us =
  let closed = Timeseries.flush t.ts ~now_us in
  List.iter (eval_window t) closed;
  closed

let incidents t = List.rev t.incidents
let incident_count t = List.length t.incidents
let healthy t = t.incidents = []

let open_incidents t =
  List.rev
    (List.filter (fun i -> i.closed_at_us = None) t.incidents)

(* {2 Rendering} *)

let health_line t =
  match Timeseries.last t.ts with
  | None -> None
  | Some w ->
    let open Timeseries in
    let p99 =
      match hist_stats w "server.latency.us" with
      | Some s -> s.Histogram.w_p99
      | None -> 0.
    in
    let g name = match gauge_value w name with Some v -> v | None -> 0. in
    let n_open = List.length (open_incidents t) in
    Some
      (Printf.sprintf
         "w%03d t=%6.2fs tps=%6.1f p99=%8.0fus aborts=%3d shed=%3d \
          spool=%4.2f occ=%4.2f lag=%d inc=%d%s"
         w.index (w.t1_us /. 1e6) (rate w "server.committed") p99
         (counter_delta w "server.retry")
         (counter_delta w "server.shed")
         (g "spool.pressure") (g "log.occupancy")
         (int_of_float (g "lsn.commit" -. g "lsn.durable"))
         n_open
         (if n_open > 0 then " !" else ""))

let incident_json inc =
  let open Json in
  Obj
    [
      ("rule", String inc.i_rule);
      ("severity", String (severity_to_string inc.i_severity));
      ("opened_at_us", Float inc.opened_at_us);
      ( "closed_at_us",
        match inc.closed_at_us with Some v -> Float v | None -> Null );
      ("reasons", List (List.map (fun r -> String r) inc.i_reasons));
      ("windows", List (List.map Timeseries.window_json inc.i_windows));
      ( "flight_recorder",
        List
          (List.map
             (fun sp -> String (Format.asprintf "%a" Trace.pp_span sp))
             inc.flight_recorder) );
    ]

let postmortem ?(run = []) t =
  let open Json in
  let members =
    (if run = [] then [] else [ ("run", Obj run) ])
    @ [
        ("schema", String "rvm-postmortem/1");
        ("window_us", Float (Timeseries.window_us t.ts));
        ("windows_closed", Int (Timeseries.completed t.ts));
        ("healthy", Bool (healthy t));
        ("incident_count", Int (incident_count t));
        ("open_incident_count", Int (List.length (open_incidents t)));
        ("incidents", List (List.map incident_json (incidents t)));
        ( "series",
          List (List.map Timeseries.window_json (Timeseries.windows t.ts)) );
      ]
  in
  Obj members
