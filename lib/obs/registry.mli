(** The observability spine: one registry per engine instance.

    A registry is a get-or-create namespace of {!Counter}s and
    {!Histogram}s plus a span tracer. Every layer — device, log, engine,
    harness — reports through the registry it is handed, so a single
    snapshot attributes cost across the whole stack.

    {2 Naming scheme}

    Dot-separated, layer first: [disk.log.writes], [log.bytes_logged],
    [txn.committed], [truncation.epoch.count]. A span named [s] owns the
    counter [s ^ ".count"] and the histogram [s ^ ".us"]; spans the engine
    emits are [log.force], [truncation.epoch],
    [truncation.incremental.step], [commit.no_flush], [segment.sync] and
    [recovery]. *)

type t

type span_event = { scope : string; start_us : float; dur_us : float }

val create : ?trace_capacity:int -> unit -> t
(** [trace_capacity] (default 0 = tracing off) bounds the retained span
    events; older events are dropped first. *)

val set_time_source : t -> (unit -> float) -> unit
(** Replace the wall clock (microseconds) used to time spans — e.g. with a
    simulated {!Rvm_util.Clock}, so span histograms report simulated
    rather than host time. *)

val counter : t -> string -> Counter.t
val histogram : t -> string -> Histogram.t

val span : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span: bumps [name ^ ".count"], records
    the duration in [name ^ ".us"], and appends a {!span_event} when
    tracing is on. Exceptions propagate; the span still closes. *)

val set_trace_capacity : t -> int -> unit
val events : t -> span_event list
(** Retained span events, oldest first. *)

val counters : t -> (string * int) list
(** Name-sorted. *)

val histograms : t -> (string * Histogram.t) list
(** Name-sorted. *)

val reset : t -> unit
(** Zero every counter and histogram and drop retained events. Handles
    stay valid. *)

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
