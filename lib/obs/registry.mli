(** The observability spine: one registry per engine instance.

    A registry is a get-or-create namespace of {!Counter}s and
    {!Histogram}s plus a causal span tracer ({!Trace}) doubling as an
    always-on flight recorder. Every layer — device, log, engine,
    harness — reports through the registry it is handed, so a single
    snapshot attributes cost across the whole stack, and a single trace
    shows {e why} each device write happened: every span is linked to
    the span that was open when it started, rooting device ops under the
    transaction that caused them.

    {2 Naming scheme}

    Dot-separated, layer first: [disk.log.writes], [log.bytes_logged],
    [txn.committed], [truncation.epoch.count]. A span named [s] owns the
    counter [s ^ ".count"] and the histogram [s ^ ".us"]; spans the
    engine emits are [txn.commit], [txn.abort], [commit.encode],
    [commit.no_flush], [log.drain], [log.force], [truncation.epoch],
    [truncation.incremental.step], [segment.sync], [recovery] and the
    device-layer [disk.log.write], [disk.log.sync], [disk.seg.write],
    [disk.seg.sync]. The layer prefix (text before the first dot) keys
    the per-layer tracks in {!Export.chrome_trace}. *)

type t

type span_event = Trace.span = {
  id : int;
  parent : int option;
  scope : string;
  start_us : float;
  dur_us : float;
  attrs : (string * Trace.value) list;
}

val create : ?trace_capacity:int -> unit -> t
(** [trace_capacity] (default 0 = tracing off) bounds the retained span
    events; older events are dropped first. *)

val set_time_source : t -> (unit -> float) -> unit
(** Replace the wall clock (microseconds) used to time spans — e.g. with a
    simulated {!Rvm_util.Clock}, so span histograms and trace timestamps
    report simulated rather than host time. *)

val counter : t -> string -> Counter.t
val histogram : t -> string -> Histogram.t

val span : ?attrs:(string * Trace.value) list -> t -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span: bumps [name ^ ".count"], records
    the duration in [name ^ ".us"], and (when tracing is on) records a
    {!span_event} whose parent is the span open at the call. Exceptions
    propagate; the span still closes. *)

val add_attr : t -> string -> Trace.value -> unit
(** Attach an attribute to the innermost open span; no-op when none is
    open (so callers never need to know whether they are being traced). *)

val instant : ?attrs:(string * Trace.value) list -> t -> string -> unit
(** Record a zero-duration point event under the current span and bump
    [name ^ ".count"]. *)

val current_span : t -> int option
(** Id of the innermost open span, if any. *)

val set_trace_capacity : t -> int -> unit
val trace_capacity : t -> int

val events : t -> span_event list
(** Retained span events, oldest first (insertion order — children close
    before parents). O(retained). *)

val events_since : t -> int -> span_event list * int
(** Cursor-based polling: spans finished since the cursor, oldest first,
    plus the new cursor. Repeated polling costs O(new events), not
    O(ring). Pass [0] for everything retained. *)

val trace_seq : t -> int
(** Total spans finished so far — a fresh {!events_since} cursor. *)

val counters : t -> (string * int) list
(** Name-sorted. *)

val histograms : t -> (string * Histogram.t) list
(** Name-sorted. *)

val reset : t -> unit
(** Zero every counter and histogram and drop retained events. Handles
    stay valid; open spans and the trace cursor are untouched. *)

val to_json : t -> Json.t
(** Counters, histogram summaries (with p50/p95/p99), and — when tracing
    is on — the retained spans with ids, parents and attributes. *)

val pp : Format.formatter -> t -> unit

val pp_tail : ?n:int -> Format.formatter -> t -> unit
(** Flight-recorder dump: the last [n] (default 16) retained spans, one
    per line, oldest first — what the engine was doing just before an
    abort, a failed recovery, or an injected crash. *)
