(** Trace exporters: Chrome trace_event JSON and a [top]-style summary.

    Consumes the spans retained by a {!Registry} flight recorder. The
    Chrome export loads in Perfetto / [chrome://tracing]: one process,
    one track (thread) per layer — the layer is the scope prefix before
    the first dot, so [disk.log.sync] lands on the [disk] track and
    [txn.commit] on the [txn] track — with span ids, parents and typed
    attributes preserved under [args]. *)

val layer : string -> string
(** [layer "disk.log.sync"] is ["disk"]. *)

val chrome_trace : ?process_name:string -> Registry.span_event list -> Json.t
(** Chrome trace_event document: [{"traceEvents": [...]}] with ["M"]
    metadata events naming the process and per-layer threads, then one
    ["X"] (complete) event per span — [ts]/[dur] in microseconds, [args]
    carrying [id], [parent] and the span attributes. *)

val write_chrome_trace :
  ?process_name:string -> path:string -> Registry.span_event list -> unit

(** {2 Per-transaction cost attribution} *)

type txn_cost = {
  root : Registry.span_event;  (** the [txn.commit] / [txn.abort] span *)
  txn_id : int option;  (** from the root's [txn_id] attribute *)
  encode_us : float;  (** time in [commit.encode] descendants *)
  spool_us : float;  (** time in [commit.no_flush] descendants *)
  drain_us : float;  (** time in [log.drain] descendants *)
  sync_us : float;  (** time in [log.force] descendants *)
}

val txn_root :
  Registry.span_event list -> Registry.span_event -> Registry.span_event option
(** Nearest enclosing transaction root ([txn.commit] or [txn.abort]) of a
    span, walking parents within the given retained set; [None] when the
    chain leaves the ring or hits a non-transaction root. *)

val txn_costs : Registry.span_event list -> txn_cost list
(** One entry per transaction root in the trace, in close order, with
    descendant durations bucketed into encode / spool / drain / sync. *)

val pp_top : ?slowest:int -> Format.formatter -> Registry.span_event list -> unit
(** [top]-style report: committed/aborted counts, p50/p95/p99/max/mean
    commit latency split into encode, spool, drain and sync, and the
    [slowest] (default 5) commits with their per-phase breakdown. *)
