(** HDR-style sub-bucketed histogram for latencies and sizes.

    Observations are non-negative floats (microseconds, bytes, ...).
    Values below 32 get exact unit buckets; above that, each power-of-two
    octave is split into 32 linear sub-buckets, so the relative quantile
    error stays under ~3% (versus the 2x of plain power-of-two buckets)
    at a constant ~1.9k-bucket footprint. Exact count / sum / min / max
    are tracked alongside. *)

type t

val v : string -> t
val name : t -> string
val observe : t -> float -> unit
val count : t -> int
val sum : t -> float
val mean : t -> float

val min_value : t -> float
(** [infinity] when empty — prefer {!min_opt} for output paths. *)

val max_value : t -> float
(** [neg_infinity] when empty — prefer {!max_opt} for output paths. *)

val min_opt : t -> float option
(** [None] when empty. *)

val max_opt : t -> float option
(** [None] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] (0 <= q <= 1): upper bound of the sub-bucket where the
    cumulative count reaches [q], clamped to the observed maximum; 0 when
    empty. *)

val percentile : t -> float -> float
(** [percentile t p] (0 <= p <= 100, clamped): [quantile t (p /. 100.)] —
    the p50/p95/p99 convention used by {!Registry.pp} and the JSON
    snapshots. *)

val buckets : t -> (float * int) list
(** Non-empty buckets as [(upper_bound, count)], ascending. *)

val reset : t -> unit

(** {2 Window deltas}

    A {!snapshot} is a cursor over the cumulative buckets; {!advance}
    reports the statistics of everything observed since the cursor and
    moves it to now. {!Timeseries} keeps one cursor per histogram to turn
    cumulative totals into per-window p50/p95/p99. *)

type snapshot

val snapshot : t -> snapshot

val zero_snapshot : unit -> snapshot
(** A cursor positioned before any observation — [advance] from it
    reports a histogram's full cumulative contents as the first
    window. *)

type window_stats = {
  w_count : int;
  w_sum : float;
  w_p50 : float;
  w_p95 : float;
  w_p99 : float;
  w_max : float;  (** sub-bucket upper edge — 0 when the window is empty *)
}

val advance : t -> snapshot -> window_stats
