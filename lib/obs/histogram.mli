(** Power-of-two-bucketed histogram for latencies and sizes.

    Observations are non-negative floats (microseconds, bytes, ...).
    Bucket [i] counts observations in [(2^(i-1), 2^i]] (bucket 0 covers
    [[0, 1]]), which keeps the memory footprint constant and the relative
    quantile error under 2x — plenty for attributing cost to layers. Exact
    count / sum / min / max are tracked alongside. *)

type t

val v : string -> t
val name : t -> string
val observe : t -> float -> unit
val count : t -> int
val sum : t -> float
val mean : t -> float
val min_value : t -> float
(** [infinity] when empty. *)

val max_value : t -> float
(** [neg_infinity] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] (0 <= q <= 1): upper bound of the bucket where the
    cumulative count reaches [q]; 0 when empty. *)

val percentile : t -> float -> float
(** [percentile t p] (0 <= p <= 100, clamped): [quantile t (p /. 100.)] —
    the p50/p95/p99 convention used by {!Registry.pp} and the JSON
    snapshots. Like {!quantile}, the result is a bucket upper bound
    clamped to the observed maximum. *)

val buckets : t -> (float * int) list
(** Non-empty buckets as [(upper_bound, count)], ascending. *)

val reset : t -> unit
