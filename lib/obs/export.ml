let layer scope =
  match String.index_opt scope '.' with
  | Some i -> String.sub scope 0 i
  | None -> scope

let value_json = function
  | Trace.Bool b -> Json.Bool b
  | Trace.Int i -> Json.Int i
  | Trace.Float f -> Json.Float f
  | Trace.String s -> Json.String s

(* Tracks appear in Perfetto in tid order; put the causal top of the stack
   (transactions) first and the device layer last so a trace reads
   top-down the way the system is layered. *)
let preferred_layers =
  [ "txn"; "commit"; "recovery"; "log"; "truncation"; "segment"; "disk" ]

let chrome_trace ?(process_name = "rvm") (spans : Registry.span_event list) =
  let open Json in
  let tid_of = Hashtbl.create 8 in
  let tids_rev = ref [] in
  let next = ref 0 in
  let assign l =
    if not (Hashtbl.mem tid_of l) then begin
      incr next;
      Hashtbl.add tid_of l !next;
      tids_rev := (l, !next) :: !tids_rev
    end
  in
  let present = Hashtbl.create 8 in
  List.iter
    (fun (s : Registry.span_event) ->
      Hashtbl.replace present (layer s.scope) ())
    spans;
  List.iter (fun l -> if Hashtbl.mem present l then assign l) preferred_layers;
  List.iter (fun (s : Registry.span_event) -> assign (layer s.scope)) spans;
  let meta ~tid name args =
    Obj
      [
        ("name", String name);
        ("ph", String "M");
        ("pid", Int 1);
        ("tid", Int tid);
        ("args", Obj args);
      ]
  in
  let metas =
    meta ~tid:0 "process_name" [ ("name", String process_name) ]
    :: List.concat_map
         (fun (l, tid) ->
           [
             meta ~tid "thread_name" [ ("name", String l) ];
             meta ~tid "thread_sort_index" [ ("sort_index", Int tid) ];
           ])
         (List.rev !tids_rev)
  in
  let event (s : Registry.span_event) =
    let args =
      ("id", Int s.id)
      :: (match s.parent with Some p -> [ ("parent", Int p) ] | None -> [])
      @ List.map (fun (k, v) -> (k, value_json v)) s.attrs
    in
    Obj
      [
        ("name", String s.scope);
        ("cat", String (layer s.scope));
        ("ph", String "X");
        ("ts", Float s.start_us);
        ("dur", Float s.dur_us);
        ("pid", Int 1);
        ("tid", Int (Hashtbl.find tid_of (layer s.scope)));
        ("args", Obj args);
      ]
  in
  Obj
    [
      ("traceEvents", List (metas @ List.map event spans));
      ("displayTimeUnit", String "ms");
    ]

let write_chrome_trace ?process_name ~path spans =
  Json.write_file ~path (chrome_trace ?process_name spans)

(* --- per-transaction cost attribution --- *)

type txn_cost = {
  root : Registry.span_event;
  txn_id : int option;
  encode_us : float;
  spool_us : float;
  drain_us : float;
  sync_us : float;
}

let is_txn_root (s : Registry.span_event) =
  s.scope = "txn.commit" || s.scope = "txn.abort"

let txn_root spans (s : Registry.span_event) =
  let tbl = Hashtbl.create (List.length spans) in
  List.iter
    (fun (sp : Registry.span_event) -> Hashtbl.replace tbl sp.id sp)
    spans;
  let rec go (s : Registry.span_event) =
    if is_txn_root s then Some s
    else
      match s.parent with
      | None -> None
      | Some p -> (
        match Hashtbl.find_opt tbl p with None -> None | Some ps -> go ps)
  in
  go s

type phase = Encode | Spool | Drain | Sync

let phase_of_scope = function
  | "commit.encode" -> Some Encode
  | "commit.no_flush" -> Some Spool
  | "log.drain" -> Some Drain
  | "log.force" -> Some Sync
  | _ -> None

let txn_costs (spans : Registry.span_event list) =
  let tbl = Hashtbl.create (List.length spans) in
  List.iter
    (fun (sp : Registry.span_event) -> Hashtbl.replace tbl sp.id sp)
    spans;
  let rec root_of (s : Registry.span_event) =
    if is_txn_root s then Some s
    else
      match s.parent with
      | None -> None
      | Some p -> (
        match Hashtbl.find_opt tbl p with None -> None | Some ps -> root_of ps)
  in
  let acc = Hashtbl.create 64 in
  (* root id -> (encode, spool, drain, sync) refs *)
  let bucket root_id =
    match Hashtbl.find_opt acc root_id with
    | Some b -> b
    | None ->
      let b = (ref 0., ref 0., ref 0., ref 0.) in
      Hashtbl.add acc root_id b;
      b
  in
  List.iter
    (fun (s : Registry.span_event) ->
      match phase_of_scope s.scope with
      | None -> ()
      | Some phase -> (
        match root_of s with
        | None -> ()
        | Some root ->
          let e, sp, d, sy = bucket root.id in
          let r =
            match phase with
            | Encode -> e
            | Spool -> sp
            | Drain -> d
            | Sync -> sy
          in
          r := !r +. s.dur_us))
    spans;
  List.filter_map
    (fun (s : Registry.span_event) ->
      if not (is_txn_root s) then None
      else
        let e, sp, d, sy =
          match Hashtbl.find_opt acc s.id with
          | Some (e, sp, d, sy) -> (!e, !sp, !d, !sy)
          | None -> (0., 0., 0., 0.)
        in
        let txn_id =
          match List.assoc_opt "txn_id" s.attrs with
          | Some (Trace.Int i) -> Some i
          | _ -> None
        in
        Some
          {
            root = s;
            txn_id;
            encode_us = e;
            spool_us = sp;
            drain_us = d;
            sync_us = sy;
          })
    spans

let pp_top ?(slowest = 5) ppf spans =
  let costs = txn_costs spans in
  let commits =
    List.filter (fun c -> c.root.Trace.scope = "txn.commit") costs
  in
  let aborts = List.length costs - List.length commits in
  Format.fprintf ppf "@[<v>transactions: %d committed, %d aborted@,"
    (List.length commits) aborts;
  if commits = [] then Format.fprintf ppf "(no committed transactions)@]"
  else begin
    let mk name = Histogram.v name in
    let total = mk "total"
    and encode = mk "encode"
    and spool = mk "spool"
    and drain = mk "drain"
    and sync = mk "sync" in
    List.iter
      (fun c ->
        Histogram.observe total c.root.Trace.dur_us;
        Histogram.observe encode c.encode_us;
        Histogram.observe spool c.spool_us;
        Histogram.observe drain c.drain_us;
        Histogram.observe sync c.sync_us)
      commits;
    Format.fprintf ppf "commit latency (us):%14s%10s%10s%10s%10s@," "p50" "p95"
      "p99" "max" "mean";
    let row name h =
      Format.fprintf ppf "  %-16s%12.1f%10.1f%10.1f%10.1f%10.1f@," name
        (Histogram.percentile h 50.)
        (Histogram.percentile h 95.)
        (Histogram.percentile h 99.)
        (Histogram.max_value h) (Histogram.mean h)
    in
    row "total" total;
    row "encode" encode;
    row "spool" spool;
    row "drain" drain;
    row "sync" sync;
    let sorted =
      List.sort
        (fun a b -> compare b.root.Trace.dur_us a.root.Trace.dur_us)
        commits
    in
    let rec take k l =
      if k <= 0 then [] else match l with [] -> [] | x :: r -> x :: take (k - 1) r
    in
    let top = take slowest sorted in
    if top <> [] then begin
      Format.fprintf ppf "slowest commits:@,";
      List.iter
        (fun c ->
          let id =
            match c.txn_id with Some i -> string_of_int i | None -> "?"
          in
          Format.fprintf ppf
            "  txn=%-8s total=%-10.1f encode=%-8.1f spool=%-8.1f \
             drain=%-8.1f sync=%.1f@,"
            id c.root.Trace.dur_us c.encode_us c.spool_us c.drain_us c.sync_us)
        top
    end;
    Format.fprintf ppf "@]"
  end
