(** Causal span recorder: the flight recorder under {!Registry}.

    Every span has an identity ([id]), a causal parent (the span that was
    open when it started — [None] for roots), and typed attributes
    ([txn_id], [bytes], ...). Finished spans land in a bounded ring in
    insertion order; because a span is recorded when it {e closes},
    children precede their parents and the newest [capacity] spans are
    always retained — crash the process (or hit a contract violation) and
    the ring is the post-mortem: the last N things the engine did.

    Single-threaded by design, like the engine it instruments: the open
    span context is one stack, not a thread-local. *)

type value =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

type span = {
  id : int;  (** unique within one recorder, dense from 1 *)
  parent : int option;  (** the span open when this one started *)
  scope : string;  (** dot-separated, layer first: [log.drain] *)
  start_us : float;
  dur_us : float;
  attrs : (string * value) list;  (** in [add_attr] call order *)
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 0 = recording off) bounds the ring; the open-span
    stack and ids are maintained either way so causality survives a
    mid-run [set_capacity]. *)

val capacity : t -> int
val set_capacity : t -> int -> unit
(** Resize, keeping the newest [min length n] spans. *)

val seq : t -> int
(** Total spans finished so far (recorded or dropped) — the polling
    cursor for {!events_since}. *)

val length : t -> int
(** Spans currently retained in the ring. *)

val depth : t -> int
(** Open (unfinished) spans. *)

val current : t -> int option
(** Id of the innermost open span. *)

val enter : t -> now:float -> ?attrs:(string * value) list -> string -> unit
(** Open a span as a child of {!current}. *)

val add_attr : t -> string -> value -> unit
(** Attach an attribute to the innermost open span; no-op when none is
    open. *)

val exit : t -> now:float -> span
(** Close the innermost open span, record it, and return it. Raises
    [Invalid_argument] when no span is open. *)

val instant : t -> now:float -> ?attrs:(string * value) list -> string -> unit
(** Record a zero-duration span (a point event) under {!current}. *)

val events : t -> span list
(** Retained spans, oldest first. O(length), no re-sorting. *)

val events_since : t -> int -> span list * int
(** [events_since t cursor] returns the retained spans whose global index
    is [>= cursor] (oldest first) and the new cursor — polling the
    recorder in a loop costs O(new events), not O(ring). Pass [0] (or a
    stale cursor) to get everything retained. *)

val clear : t -> unit
(** Drop retained spans. Ids, the cursor and open spans are untouched. *)

val pp_value : Format.formatter -> value -> unit

val pp_span : Format.formatter -> span -> unit
(** One line: [#id<#parent scope @start +dur attrs...]. *)
