(** Declarative SLO monitoring with typed incidents and postmortems.

    A monitor owns a {!Timeseries} and a set of {!rule}s. Every closed
    window is probed by every rule; [open_after] consecutive breaching
    windows open a typed {!incident}, [close_after] consecutive healthy
    windows close it again (hysteresis, so one noisy window never
    pages). Each incident captures the windows that triggered it plus a
    flight-recorder tail of the spans in flight when it opened. A run
    ends with {!finish} and a {!postmortem} JSON document — a healthy
    run reports zero incidents. *)

type severity = Warn | Page

val severity_to_string : severity -> string

type verdict = Healthy | Breach of string

type rule = {
  name : string;  (** incident type, e.g. ["commit-p99-burst"] *)
  severity : severity;
  open_after : int;  (** consecutive breaching windows to open *)
  close_after : int;  (** consecutive healthy windows to close *)
  probe : Timeseries.window -> verdict;
}

val rule :
  ?severity:severity ->
  ?open_after:int ->
  ?close_after:int ->
  string ->
  (Timeseries.window -> verdict) ->
  rule
(** Defaults: [Page], open after 2, close after 3. Raises
    [Invalid_argument] on non-positive streaks. *)

(** {2 The standard rule set}

    Metric names default to the transaction server's registry schema
    ([server.*] counters/histograms and the [spool.pressure] /
    [lsn.commit] / [lsn.durable] / [log.occupancy] / [truncation.due]
    gauges registered by the monitored server); every name is a
    parameter so other harnesses can reuse the shapes. *)

val commit_latency_rule :
  ?hist:string ->
  ?ratio:float ->
  ?floor_us:float ->
  ?min_count:int ->
  ?warmup:int ->
  unit ->
  rule
(** Window p99 above [ratio] (default 3x) times a rolling EMA baseline
    of healthy windows. The baseline learns over [warmup] windows with
    at least [min_count] commits and freezes while breaching, so an
    incident cannot drag its own threshold up. [floor_us] suppresses
    breaches while everything is faster than it. *)

val abort_rate_rule :
  ?committed:string -> ?retried:string -> ?max_rate:float -> ?min_ops:int ->
  unit -> rule

val shed_rate_rule :
  ?shed:string -> ?committed:string -> ?max_rate:float -> ?min_arrivals:int ->
  unit -> rule
(** Admission control turning away more than [max_rate] (default 0.25)
    of a window's arrivals — the overload signature past the saturation
    knee, where shedding keeps the inside of the server healthy. *)

val spool_pressure_rule : ?gauge:string -> ?watermark:float -> unit -> rule

val truncation_starvation_rule :
  ?due:string -> ?steps:string list -> unit -> rule
(** Truncation reported due for a whole window while zero truncation
    steps (epoch, incremental, emergency) ran. *)

val durable_stall_rule : ?commit:string -> ?durable:string -> unit -> rule
(** The durable-LSN gauge frozen across a window while the commit LSN
    sits ahead of it. *)

val shard_imbalance_rule :
  ?prefix:string ->
  ?suffix:string ->
  ?shards:int ->
  ?max_skew:float ->
  ?min_per_window:int ->
  unit ->
  rule
(** Max/min per-shard committed delta beyond [max_skew] (or a shard
    fully starved) in a window with enough volume. *)

val default_rules : ?shards:int -> unit -> rule list
(** The six engine rules, plus {!shard_imbalance_rule} when
    [shards > 1]. *)

(** {2 Incidents} *)

type incident = {
  i_rule : string;
  i_severity : severity;
  opened_at_us : float;
  mutable closed_at_us : float option;
      (** [None] = still open when the run ended *)
  mutable i_windows : Timeseries.window list;  (** triggering, oldest first *)
  mutable i_reasons : string list;  (** one per retained window *)
  flight_recorder : Trace.span list;  (** span tail at open *)
}

type t

val create :
  ?max_incident_windows:int ->
  ?tail_len:int ->
  rules:rule list ->
  Timeseries.t ->
  Registry.t ->
  t
(** The registry supplies the flight-recorder tail (enable a trace
    capacity on it for non-empty tails). *)

val timeseries : t -> Timeseries.t

val tick : t -> now_us:float -> Timeseries.window list
(** Drive the clock forward: closes elapsed windows via
    {!Timeseries.tick}, probes every rule on each, and returns the
    closed windows (usually [[]]) so callers can stream them. *)

val finish : t -> now_us:float -> Timeseries.window list
(** End-of-run {!Timeseries.flush} plus rule evaluation of the tail. *)

val incidents : t -> incident list
(** All incidents, oldest first. *)

val open_incidents : t -> incident list
val incident_count : t -> int

val healthy : t -> bool
(** Zero incidents over the whole run. *)

val health_line : t -> string option
(** Top-style one-liner for the last closed window ([None] before the
    first close): window index, simulated time, commit rate, window
    p99, aborts, sheds, spool pressure, log occupancy, LSN lag and open
    incident count. *)

val incident_json : incident -> Json.t

val postmortem : ?run:(string * Json.t) list -> t -> Json.t
(** The end-of-run report: run metadata, health verdict, every incident
    with its triggering windows and flight-recorder tail, and the
    retained window series. *)
