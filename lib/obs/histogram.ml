let bucket_count = 64

type t = {
  name : string;
  mutable count : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
  buckets : int array;
}

let v name =
  {
    name;
    count = 0;
    sum = 0.;
    mn = infinity;
    mx = neg_infinity;
    buckets = Array.make bucket_count 0;
  }

let name t = t.name

let bucket_index v =
  if v <= 1. then 0
  else
    let i = int_of_float (Float.ceil (Float.log2 v)) in
    (* Guard the exact-power-of-two rounding edge: ceil(log2 v) can come out
       one low when v is a hair above a representable power. *)
    let i = if Float.of_int i < Float.log2 v then i + 1 else i in
    if i < 0 then 0 else if i >= bucket_count then bucket_count - 1 else i

let upper_bound i = Float.pow 2. (Float.of_int i)

let observe t v =
  let v = if v < 0. then 0. else v in
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.mn then t.mn <- v;
  if v > t.mx then t.mx <- v;
  let i = bucket_index v in
  t.buckets.(i) <- t.buckets.(i) + 1

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count
let min_value t = t.mn
let max_value t = t.mx

let quantile t q =
  if t.count = 0 then 0.
  else begin
    let target = Float.max 1. (q *. float_of_int t.count) in
    let acc = ref 0 in
    let result = ref (upper_bound (bucket_count - 1)) in
    (try
       for i = 0 to bucket_count - 1 do
         acc := !acc + t.buckets.(i);
         if float_of_int !acc >= target then begin
           result := upper_bound i;
           raise Exit
         end
       done
     with Exit -> ());
    (* Never report a quantile beyond the observed maximum. *)
    Float.min !result t.mx
  end

let percentile t p =
  let p = if p < 0. then 0. else if p > 100. then 100. else p in
  quantile t (p /. 100.)

let buckets t =
  let acc = ref [] in
  for i = bucket_count - 1 downto 0 do
    if t.buckets.(i) > 0 then acc := (upper_bound i, t.buckets.(i)) :: !acc
  done;
  !acc

let reset t =
  t.count <- 0;
  t.sum <- 0.;
  t.mn <- infinity;
  t.mx <- neg_infinity;
  Array.fill t.buckets 0 bucket_count 0
