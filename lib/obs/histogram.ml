(* HDR-style histogram: exact unit buckets below [sub_count], then
   [sub_count] linear sub-buckets per power-of-two octave, bounding the
   relative quantile error by 1/sub_count (~3%) instead of the 2x of
   plain power-of-two buckets. *)

let sub_bits = 5
let sub_count = 1 lsl sub_bits (* 32 *)
let max_k = 62
let bucket_count = sub_count + ((max_k - sub_bits + 1) * sub_count)

type t = {
  name : string;
  mutable count : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
  buckets : int array;
}

type snapshot = {
  mutable s_count : int;
  mutable s_sum : float;
  s_buckets : int array;
}

let v name =
  {
    name;
    count = 0;
    sum = 0.;
    mn = infinity;
    mx = neg_infinity;
    buckets = Array.make bucket_count 0;
  }

let name t = t.name

(* floor(log2 n) for n >= 1, with guards against float rounding on exact
   powers of two. *)
let log2_floor n =
  let k = int_of_float (Float.log2 (float_of_int n)) in
  if k > 0 && n lsr k = 0 then k - 1
  else if k + 1 <= max_k && n lsr (k + 1) > 0 then k + 1
  else k

(* Observations bucket by their ceiling integer: exact below [sub_count],
   then octave k / sub-bucket (n - 2^k) / 2^(k-sub_bits). *)
let bucket_of_int n =
  if n < sub_count then n
  else
    let k = log2_floor n in
    if k > max_k then bucket_count - 1
    else
      let sub = (n - (1 lsl k)) lsr (k - sub_bits) in
      sub_count + ((k - sub_bits) * sub_count) + sub

let bucket_index v =
  if v <= 0. then 0
  else if v >= 4.611686018427387904e18 (* 2^62 *) then bucket_count - 1
  else bucket_of_int (int_of_float (Float.ceil v))

(* Largest value that maps to bucket [i] — the inclusive upper edge used
   when reporting quantiles. *)
let upper_bound i =
  if i < sub_count then float_of_int i
  else
    let octave = (i - sub_count) / sub_count in
    let sub = (i - sub_count) mod sub_count in
    let k = octave + sub_bits in
    float_of_int ((1 lsl k) + ((sub + 1) lsl (k - sub_bits)))

let observe t v =
  let v = if v < 0. then 0. else v in
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.mn then t.mn <- v;
  if v > t.mx then t.mx <- v;
  let i = bucket_index v in
  t.buckets.(i) <- t.buckets.(i) + 1

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count
let min_value t = t.mn
let max_value t = t.mx
let min_opt t = if t.count = 0 then None else Some t.mn
let max_opt t = if t.count = 0 then None else Some t.mx

let quantile t q =
  if t.count = 0 then 0.
  else begin
    let target = Float.max 1. (q *. float_of_int t.count) in
    let acc = ref 0 in
    let result = ref (upper_bound (bucket_count - 1)) in
    (try
       for i = 0 to bucket_count - 1 do
         acc := !acc + t.buckets.(i);
         if float_of_int !acc >= target then begin
           result := upper_bound i;
           raise Exit
         end
       done
     with Exit -> ());
    (* Never report a quantile beyond the observed maximum. *)
    Float.min !result t.mx
  end

let percentile t p =
  let p = if p < 0. then 0. else if p > 100. then 100. else p in
  quantile t (p /. 100.)

let buckets t =
  let acc = ref [] in
  for i = bucket_count - 1 downto 0 do
    if t.buckets.(i) > 0 then acc := (upper_bound i, t.buckets.(i)) :: !acc
  done;
  !acc

let reset t =
  t.count <- 0;
  t.sum <- 0.;
  t.mn <- infinity;
  t.mx <- neg_infinity;
  Array.fill t.buckets 0 bucket_count 0

(* Window deltas: a snapshot is a cursor over the cumulative buckets;
   [advance] reports the statistics of everything observed since the
   cursor and moves it forward. *)

type window_stats = {
  w_count : int;
  w_sum : float;
  w_p50 : float;
  w_p95 : float;
  w_p99 : float;
  w_max : float;
}

let snapshot t =
  { s_count = t.count; s_sum = t.sum; s_buckets = Array.copy t.buckets }

let zero_snapshot () =
  { s_count = 0; s_sum = 0.; s_buckets = Array.make bucket_count 0 }

let delta_quantile t s ~d_count q =
  let target = Float.max 1. (q *. float_of_int d_count) in
  let acc = ref 0 in
  let result = ref 0. in
  (try
     for i = 0 to bucket_count - 1 do
       acc := !acc + t.buckets.(i) - s.s_buckets.(i);
       if float_of_int !acc >= target then begin
         result := upper_bound i;
         raise Exit
       end
     done
   with Exit -> ());
  !result

let advance t s =
  let d_count = t.count - s.s_count in
  let stats =
    if d_count <= 0 then
      { w_count = 0; w_sum = 0.; w_p50 = 0.; w_p95 = 0.; w_p99 = 0.; w_max = 0. }
    else begin
      let d_sum = t.sum -. s.s_sum in
      let hi = ref 0 in
      for i = 0 to bucket_count - 1 do
        if t.buckets.(i) - s.s_buckets.(i) > 0 then hi := i
      done;
      (* Bucket upper edges bound the window maximum from above (the exact
         per-window max is not retained); quantiles cannot exceed it. *)
      let w_max = Float.min (upper_bound !hi) t.mx in
      let q x = Float.min (delta_quantile t s ~d_count x) w_max in
      {
        w_count = d_count;
        w_sum = d_sum;
        w_p50 = q 0.5;
        w_p95 = q 0.95;
        w_p99 = q 0.99;
        w_max;
      }
    end
  in
  s.s_count <- t.count;
  s.s_sum <- t.sum;
  Array.blit t.buckets 0 s.s_buckets 0 bucket_count;
  stats
