type span_event = Trace.span = {
  id : int;
  parent : int option;
  scope : string;
  start_us : float;
  dur_us : float;
  attrs : (string * Trace.value) list;
}

type t = {
  counters : (string, Counter.t) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  (* One lookup per span instead of two concats + two lookups: a span
     scope resolves its [.count] / [.us] handles once. *)
  span_handles : (string, Counter.t * Histogram.t) Hashtbl.t;
  mutable now_us : unit -> float;
  trace : Trace.t;
}

let default_now () = Unix.gettimeofday () *. 1e6

let create ?(trace_capacity = 0) () =
  {
    counters = Hashtbl.create 32;
    histograms = Hashtbl.create 16;
    span_handles = Hashtbl.create 16;
    now_us = default_now;
    trace = Trace.create ~capacity:trace_capacity ();
  }

let set_time_source t f = t.now_us <- f
let set_trace_capacity t n = Trace.set_capacity t.trace n
let trace_capacity t = Trace.capacity t.trace

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = Counter.v name in
    Hashtbl.add t.counters name c;
    c

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    let h = Histogram.v name in
    Hashtbl.add t.histograms name h;
    h

let span_handles t name =
  match Hashtbl.find_opt t.span_handles name with
  | Some ch -> ch
  | None ->
    let ch = (counter t (name ^ ".count"), histogram t (name ^ ".us")) in
    Hashtbl.add t.span_handles name ch;
    ch

let span ?attrs t name f =
  let c, h = span_handles t name in
  Trace.enter t.trace ~now:(t.now_us ()) ?attrs name;
  let finish () =
    let sp = Trace.exit t.trace ~now:(t.now_us ()) in
    Counter.incr c;
    Histogram.observe h sp.Trace.dur_us
  in
  match f () with
  | x ->
    finish ();
    x
  | exception e ->
    finish ();
    raise e

let add_attr t key v = Trace.add_attr t.trace key v

let instant ?attrs t name =
  Counter.incr (counter t (name ^ ".count"));
  Trace.instant t.trace ~now:(t.now_us ()) ?attrs name

let current_span t = Trace.current t.trace
let events t = Trace.events t.trace
let events_since t cursor = Trace.events_since t.trace cursor
let trace_seq t = Trace.seq t.trace

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters t =
  List.map (fun (k, c) -> (k, Counter.get c)) (sorted_bindings t.counters)

let histograms t = sorted_bindings t.histograms

let reset t =
  Hashtbl.iter (fun _ c -> Counter.reset c) t.counters;
  Hashtbl.iter (fun _ h -> Histogram.reset h) t.histograms;
  Trace.clear t.trace

let histogram_json h =
  let open Json in
  Obj
    [
      ("count", Int (Histogram.count h));
      ("sum", Float (Histogram.sum h));
      ("mean", Float (Histogram.mean h));
      (* inf/-inf of a fresh histogram must never reach the document. *)
      ( "min",
        match Histogram.min_opt h with Some v -> Float v | None -> Null );
      ( "max",
        match Histogram.max_opt h with Some v -> Float v | None -> Null );
      ("p50", Float (Histogram.percentile h 50.));
      ("p95", Float (Histogram.percentile h 95.));
      ("p99", Float (Histogram.percentile h 99.));
    ]

let value_json = function
  | Trace.Bool b -> Json.Bool b
  | Trace.Int i -> Json.Int i
  | Trace.Float f -> Json.Float f
  | Trace.String s -> Json.String s

let span_json (ev : span_event) =
  let open Json in
  let members =
    [
      ("id", Int ev.id);
      ("scope", String ev.scope);
      ("start_us", Float ev.start_us);
      ("dur_us", Float ev.dur_us);
    ]
  in
  let members =
    match ev.parent with
    | Some p -> members @ [ ("parent", Int p) ]
    | None -> members
  in
  let members =
    match ev.attrs with
    | [] -> members
    | attrs ->
      members
      @ [ ("attrs", Obj (List.map (fun (k, v) -> (k, value_json v)) attrs)) ]
  in
  Obj members

let to_json t =
  let open Json in
  let members =
    [
      ("counters", Obj (List.map (fun (k, v) -> (k, Int v)) (counters t)));
      ( "histograms",
        Obj (List.map (fun (k, h) -> (k, histogram_json h)) (histograms t)) );
    ]
  in
  let members =
    match events t with
    | [] -> members
    | evs -> members @ [ ("spans", List (List.map span_json evs)) ]
  in
  Obj members

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  let cs = counters t in
  if cs <> [] then begin
    Format.fprintf ppf "counters:@,";
    List.iter (fun (k, v) -> Format.fprintf ppf "  %-40s %d@," k v) cs
  end;
  let hs = List.filter (fun (_, h) -> Histogram.count h > 0) (histograms t) in
  if hs <> [] then begin
    Format.fprintf ppf "histograms:@,";
    List.iter
      (fun (k, h) ->
        Format.fprintf ppf
          "  %-40s n=%d mean=%.1f min=%.1f max=%.1f p50=%.1f p95=%.1f \
           p99=%.1f@,"
          k (Histogram.count h) (Histogram.mean h) (Histogram.min_value h)
          (Histogram.max_value h)
          (Histogram.percentile h 50.)
          (Histogram.percentile h 95.)
          (Histogram.percentile h 99.))
      hs
  end;
  if cs = [] && hs = [] then Format.fprintf ppf "(empty)@,";
  Format.fprintf ppf "@]"

let pp_tail ?(n = 16) ppf t =
  let evs = events t in
  let len = List.length evs in
  let rec drop k l = if k <= 0 then l else match l with [] -> [] | _ :: r -> drop (k - 1) r in
  let tail = drop (len - n) evs in
  Format.fprintf ppf "@[<v>flight recorder: last %d of %d retained span(s)"
    (List.length tail) len;
  List.iter (fun ev -> Format.fprintf ppf "@,  %a" Trace.pp_span ev) tail;
  Format.fprintf ppf "@]"
