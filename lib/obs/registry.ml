type span_event = { scope : string; start_us : float; dur_us : float }

type t = {
  counters : (string, Counter.t) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  mutable now_us : unit -> float;
  mutable trace : span_event list;  (* newest first *)
  mutable trace_len : int;
  mutable trace_cap : int;
}

let default_now () = Unix.gettimeofday () *. 1e6

let create ?(trace_capacity = 0) () =
  {
    counters = Hashtbl.create 32;
    histograms = Hashtbl.create 16;
    now_us = default_now;
    trace = [];
    trace_len = 0;
    trace_cap = trace_capacity;
  }

let set_time_source t f = t.now_us <- f
let set_trace_capacity t n = t.trace_cap <- n

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = Counter.v name in
    Hashtbl.add t.counters name c;
    c

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    let h = Histogram.v name in
    Hashtbl.add t.histograms name h;
    h

let push_event t ev =
  t.trace <- ev :: t.trace;
  t.trace_len <- t.trace_len + 1;
  if t.trace_len > t.trace_cap then begin
    (* Drop the oldest. Trimming the list tail is O(n); cap overruns are
       amortized by halving: keep the newest [cap] events. *)
    let rec take n = function
      | x :: rest when n > 0 -> x :: take (n - 1) rest
      | _ -> []
    in
    t.trace <- take t.trace_cap t.trace;
    t.trace_len <- t.trace_cap
  end

let span t name f =
  let c = counter t (name ^ ".count") in
  let h = histogram t (name ^ ".us") in
  let start = t.now_us () in
  let finish () =
    let dur = t.now_us () -. start in
    Counter.incr c;
    Histogram.observe h dur;
    if t.trace_cap > 0 then
      push_event t { scope = name; start_us = start; dur_us = dur }
  in
  match f () with
  | x ->
    finish ();
    x
  | exception e ->
    finish ();
    raise e

let events t = List.rev t.trace

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters t =
  List.map (fun (k, c) -> (k, Counter.get c)) (sorted_bindings t.counters)

let histograms t = sorted_bindings t.histograms

let reset t =
  Hashtbl.iter (fun _ c -> Counter.reset c) t.counters;
  Hashtbl.iter (fun _ h -> Histogram.reset h) t.histograms;
  t.trace <- [];
  t.trace_len <- 0

let histogram_json h =
  let open Json in
  Obj
    [
      ("count", Int (Histogram.count h));
      ("sum", Float (Histogram.sum h));
      ("mean", Float (Histogram.mean h));
      ( "min",
        if Histogram.count h = 0 then Null else Float (Histogram.min_value h) );
      ( "max",
        if Histogram.count h = 0 then Null else Float (Histogram.max_value h) );
      ("p50", Float (Histogram.quantile h 0.5));
      ("p99", Float (Histogram.quantile h 0.99));
    ]

let to_json t =
  let open Json in
  let members =
    [
      ("counters", Obj (List.map (fun (k, v) -> (k, Int v)) (counters t)));
      ( "histograms",
        Obj (List.map (fun (k, h) -> (k, histogram_json h)) (histograms t)) );
    ]
  in
  let members =
    match events t with
    | [] -> members
    | evs ->
      members
      @ [
          ( "spans",
            List
              (List.map
                 (fun ev ->
                   Obj
                     [
                       ("scope", String ev.scope);
                       ("start_us", Float ev.start_us);
                       ("dur_us", Float ev.dur_us);
                     ])
                 evs) );
        ]
  in
  Obj members

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  let cs = counters t in
  if cs <> [] then begin
    Format.fprintf ppf "counters:@,";
    List.iter (fun (k, v) -> Format.fprintf ppf "  %-40s %d@," k v) cs
  end;
  let hs = List.filter (fun (_, h) -> Histogram.count h > 0) (histograms t) in
  if hs <> [] then begin
    Format.fprintf ppf "histograms:@,";
    List.iter
      (fun (k, h) ->
        Format.fprintf ppf
          "  %-40s n=%d mean=%.1f min=%.1f max=%.1f p50=%.1f p99=%.1f@," k
          (Histogram.count h) (Histogram.mean h) (Histogram.min_value h)
          (Histogram.max_value h) (Histogram.quantile h 0.5)
          (Histogram.quantile h 0.99))
      hs
  end;
  if cs = [] && hs = [] then Format.fprintf ppf "(empty)@,";
  Format.fprintf ppf "@]"
