(** Minimal JSON tree and printer.

    Just enough JSON to emit machine-readable metrics snapshots and bench
    results ([BENCH_*.json]) without an external dependency. Object member
    order is preserved as given, so emission is deterministic and diffable
    across runs. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values are emitted as [null] *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. *)

val to_string_pretty : t -> string
(** Two-space indented rendering, trailing newline. *)

val write_file : path:string -> t -> unit
(** Write the pretty rendering atomically-ish (temp file + rename). *)
