(** Minimal JSON tree and printer.

    Just enough JSON to emit machine-readable metrics snapshots and bench
    results ([BENCH_*.json]) without an external dependency. Object member
    order is preserved as given, so emission is deterministic and diffable
    across runs. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values are emitted as [null] *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. *)

val to_string_pretty : t -> string
(** Two-space indented rendering, trailing newline. *)

val write_file : path:string -> t -> unit
(** Write the pretty rendering atomically-ish (temp file + rename). *)

exception Parse_error of string

val of_string : string -> t
(** Parse a JSON document (whole string, surrogate pairs unsupported).
    Numbers without [.]/[e] parse as [Int] when they fit, [Float]
    otherwise. Raises {!Parse_error}. *)

val read_file : path:string -> t

val member : string -> t -> t option
(** Object member lookup; [None] on non-objects and missing keys. *)
