(** Deterministic request-arrival processes on the simulated clock.

    {e Open-loop}: a Poisson process at a fixed offered rate — arrivals
    keep coming whether or not the server keeps up, which is what bends a
    saturation curve. {e Closed-loop}: a fixed population of sessions,
    each thinking an exponential time after its previous request
    completes — the Coda-server shape, self-throttling by design. Both
    draw from an explicit {!Rvm_util.Rng.t}, so a seeded run's entire
    arrival schedule is reproducible. *)

type t

val open_loop :
  ?start_us:float ->
  rate_tps:float ->
  requests:int ->
  rng:Rvm_util.Rng.t ->
  unit ->
  t
(** Poisson arrivals at [rate_tps] transactions per (simulated) second,
    stopping after [requests] total. [start_us] (default 0) offsets the
    whole schedule — pass the simulated clock's current time so that
    world-building costs (the recovery scan reads the entire log through
    the modeled disk) don't make early arrivals retroactively late. *)

val closed_loop :
  ?start_us:float ->
  sessions:int ->
  think_us:float ->
  requests:int ->
  rng:Rvm_util.Rng.t ->
  unit ->
  t
(** [sessions] concurrent clients with exponential think time, issuing
    [requests] total. {!complete} must be called as requests finish, or
    the process stalls. *)

val next_at : t -> float option
(** Timestamp of the next arrival, [None] when exhausted. *)

val pop : t -> float option
(** Consume the next arrival, returning its timestamp. *)

val complete : t -> now:float -> unit
(** Tell a closed-loop process a request finished (committed {e or} shed):
    its session schedules the next arrival after a think-time draw. No-op
    for open-loop processes. *)

val exhausted : t -> bool
