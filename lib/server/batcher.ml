type 'a t = {
  max : int;
  mutable ready : 'a list;  (* newest first *)
  mutable count : int;
}

let create ~max =
  if max <= 0 then invalid_arg "Batcher.create: max";
  { max; ready = []; count = 0 }

let max_size t = t.max
let size t = t.count
let is_empty t = t.count = 0
let full t = t.count >= t.max

let add t x =
  if full t then invalid_arg "Batcher.add: batch full";
  t.ready <- x :: t.ready;
  t.count <- t.count + 1

let take t =
  let xs = List.rev t.ready in
  t.ready <- [];
  t.count <- 0;
  xs
