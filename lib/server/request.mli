(** Client transaction requests: TPC-A-style operations over Zipf-skewed
    account keys.

    A {e payment} is the classic TPC-A profile (account, teller, branch,
    audit record); a {e transfer} moves a delta between two skew-drawn
    accounts, locking them in draw order — the deliberate source of
    lock-order inversions that exercises the scheduler's deadlock
    abort-and-retry path. All updates are per-cell additions, so any
    serializable schedule produces the balances of the serial reference
    ({!apply_model}). A {e lookup} is the read-only class (balance lookup
    on the skew-drawn account plus its teller's branch): it writes
    nothing, takes no locks on the multi-version fast path, and is a
    no-op in the serial reference. A {e ycsb} request carries one
    {!Rvm_workload.Ycsb.op} against the recoverable ordered map — the
    second workload family; its steps come from the scheduler's workload
    plug-in and it never touches the TPC-A arrays. *)

type kind = Payment | Transfer | Lookup | Ycsb of Rvm_workload.Ycsb.op

val kind_name : kind -> string

type spec = {
  id : int;  (** request id; doubles as the lock-manager owner *)
  kind : kind;
  account : int;
  account2 : int;  (** transfer credit side; [= account] for payments *)
  teller : int;
  delta : int64;
}

type gen
(** A deterministic request source (Zipf account sampler + uniform
    teller/delta draws) over one {!Rvm_util.Rng.t} stream. *)

val make_gen :
  ?read_pct:int ->
  accounts:int ->
  zipf_s:float ->
  transfer_pct:int ->
  rng:Rvm_util.Rng.t ->
  unit ->
  gen
(** [read_pct] (default 0) is the percentage of requests drawn as
    lookups; the read roll happens before the transfer roll, and with
    [read_pct = 0] the generated stream is identical to the pre-lookup
    generator on the same seed. *)

val fresh : gen -> spec

val of_fn : (id:int -> spec) -> gen
(** A generator from any deterministic id-indexed source — how non-TPC-A
    workloads (YCSB) feed the scheduler. *)

(** {1 Per-request runtime state} *)

type status =
  | Queued  (** in the admission queue *)
  | Running  (** scheduled, executing steps *)
  | Parked of string  (** waiting for a lock key *)
  | Backoff  (** aborted on deadlock, retry timer pending *)
  | Ready  (** executed, waiting in the commit batch *)
  | Committed
  | Shed  (** refused by admission control: the [`Overload] outcome *)

type t = {
  spec : spec;
  mutable status : status;
  mutable tid : int option;  (** live engine transaction, when running *)
  mutable attempts : int;  (** deadlock aborts suffered so far *)
  arrival_us : float;
  mutable admitted_us : float;
  mutable done_us : float;
  mutable commit_lsn : int;
      (** logical commit LSN assigned when this request's commit record
          spooled; 0 until then *)
  mutable dep_lsn : int;
      (** ack dependency: the highest commit LSN of early-released state
          this request observed (through a lock it inherited or a version
          it read) — the ack must wait until the engine's durable horizon
          covers it *)
  mutable dep_writers : int list;
      (** request ids behind [dep_lsn] — the writers whose durability this
          request's ack vouches for (what the crash explorer checks) *)
  mutable audit_addr : int;
      (** address of the audit slot this request wrote, [-1] if none (set
          at execution; lets the explorer test recovered membership) *)
}

val make : spec -> arrival_us:float -> t

val apply_model :
  spec ->
  accounts:int64 array ->
  tellers:int64 array ->
  branches:int64 array ->
  unit
(** Apply the request to plain in-memory balance arrays — the serial
    reference execution the scheduler's results are checked against. *)
