(** Client transaction requests: TPC-A-style operations over Zipf-skewed
    account keys.

    A {e payment} is the classic TPC-A profile (account, teller, branch,
    audit record); a {e transfer} moves a delta between two skew-drawn
    accounts, locking them in draw order — the deliberate source of
    lock-order inversions that exercises the scheduler's deadlock
    abort-and-retry path. All updates are per-cell additions, so any
    serializable schedule produces the balances of the serial reference
    ({!apply_model}). *)

type kind = Payment | Transfer

val kind_name : kind -> string

type spec = {
  id : int;  (** request id; doubles as the lock-manager owner *)
  kind : kind;
  account : int;
  account2 : int;  (** transfer credit side; [= account] for payments *)
  teller : int;
  delta : int64;
}

type gen
(** A deterministic request source (Zipf account sampler + uniform
    teller/delta draws) over one {!Rvm_util.Rng.t} stream. *)

val make_gen :
  accounts:int -> zipf_s:float -> transfer_pct:int -> rng:Rvm_util.Rng.t -> gen

val fresh : gen -> spec

(** {1 Per-request runtime state} *)

type status =
  | Queued  (** in the admission queue *)
  | Running  (** scheduled, executing steps *)
  | Parked of string  (** waiting for a lock key *)
  | Backoff  (** aborted on deadlock, retry timer pending *)
  | Ready  (** executed, waiting in the commit batch *)
  | Committed
  | Shed  (** refused by admission control: the [`Overload] outcome *)

type t = {
  spec : spec;
  mutable status : status;
  mutable tid : int option;  (** live engine transaction, when running *)
  mutable attempts : int;  (** deadlock aborts suffered so far *)
  arrival_us : float;
  mutable admitted_us : float;
  mutable done_us : float;
}

val make : spec -> arrival_us:float -> t

val apply_model :
  spec ->
  accounts:int64 array ->
  tellers:int64 array ->
  branches:int64 array ->
  unit
(** Apply the request to plain in-memory balance arrays — the serial
    reference execution the scheduler's results are checked against. *)
