module Rng = Rvm_util.Rng
module Tpca = Rvm_workload.Tpca

type kind = Payment | Transfer | Lookup | Ycsb of Rvm_workload.Ycsb.op

let kind_name = function
  | Payment -> "payment"
  | Transfer -> "transfer"
  | Lookup -> "lookup"
  | Ycsb op -> "ycsb-" ^ Rvm_workload.Ycsb.op_name op

type spec = {
  id : int;
  kind : kind;
  account : int;
  account2 : int;
  teller : int;
  delta : int64;
}

let tpca_draw ~accounts ~zipf ~rng ~transfer_pct ~read_pct ~id =
  let account = Rng.zipf rng zipf in
  (* Draw order is fixed (account, read roll, kind roll, ...) so a stream
     with [read_pct = 0] is byte-identical to one generated before lookups
     existed — the serial-reference replay in the tests depends on it. *)
  let kind =
    if read_pct > 0 && Rng.int rng 100 < read_pct then Lookup
    else if accounts > 1 && Rng.int rng 100 < transfer_pct then Transfer
    else Payment
  in
  (* Transfers keep the two accounts in draw order — NOT sorted — so two
     concurrent transfers over the same hot pair can lock in opposite
     orders and deadlock; that is the scheduler path under test. *)
  let account2 =
    match kind with
    | Payment | Lookup | Ycsb _ -> account
    | Transfer ->
      let rec draw () =
        let a = Rng.zipf rng zipf in
        if a = account then draw () else a
      in
      draw ()
  in
  let teller = Rng.int rng Tpca.tellers in
  let delta = Int64.of_int (Rng.int rng 1000 - 500) in
  { id; kind; account; account2; teller; delta }

(* A generator is any deterministic [id -> spec] source; the TPC-A
   closure below is the original, {!of_fn} admits other workloads (YCSB)
   without the scheduler knowing. *)
type gen = { mutable next_id : int; draw : int -> spec }

let of_fn f = { next_id = 0; draw = (fun id -> f ~id) }

let make_gen ?(read_pct = 0) ~accounts ~zipf_s ~transfer_pct ~rng () =
  if accounts <= 0 then invalid_arg "Request.make_gen: accounts";
  if transfer_pct < 0 || transfer_pct > 100 then
    invalid_arg "Request.make_gen: transfer_pct";
  if read_pct < 0 || read_pct > 100 then
    invalid_arg "Request.make_gen: read_pct";
  let zipf = Rng.zipf_make ~n:accounts ~s:zipf_s in
  of_fn (fun ~id -> tpca_draw ~accounts ~zipf ~rng ~transfer_pct ~read_pct ~id)

let fresh g =
  let id = g.next_id in
  g.next_id <- id + 1;
  g.draw id

type status =
  | Queued
  | Running
  | Parked of string
  | Backoff
  | Ready
  | Committed
  | Shed

type t = {
  spec : spec;
  mutable status : status;
  mutable tid : int option;
  mutable attempts : int;
  arrival_us : float;
  mutable admitted_us : float;
  mutable done_us : float;
  mutable commit_lsn : int;
  mutable dep_lsn : int;
  mutable dep_writers : int list;
  mutable audit_addr : int;
}

let make spec ~arrival_us =
  {
    spec;
    status = Queued;
    tid = None;
    attempts = 0;
    arrival_us;
    admitted_us = nan;
    done_us = nan;
    commit_lsn = 0;
    dep_lsn = 0;
    dep_writers = [];
    audit_addr = -1;
  }

(* Serial reference model: the ops are per-cell additions, so any
   serializable execution of a request set lands on the same balances as
   applying the specs in any order — what the interleaving property
   checks the scheduler against. *)
let apply_model spec ~accounts ~tellers ~branches =
  let add arr i d = arr.(i) <- Int64.add arr.(i) d in
  match spec.kind with
  | Payment ->
    add accounts spec.account spec.delta;
    add tellers spec.teller spec.delta;
    add branches (spec.teller mod Tpca.branches) spec.delta
  | Transfer ->
    add accounts spec.account spec.delta;
    add accounts spec.account2 (Int64.neg spec.delta)
  | Lookup | Ycsb _ -> ()
