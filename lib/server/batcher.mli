(** The commit batcher: ready-to-commit transactions accumulate here so
    one no-flush + flush cycle — one log drain, one device sync through
    the group-commit path — absorbs the whole batch.

    The batcher holds at most [max] entries; the scheduler fires a batch
    when it fills, or as soon as no other request can make progress
    (partial batches never wait on a timer, so an idle server commits a
    lone transaction immediately). With [max = 1] the server degenerates
    to the unbatched configuration: every commit forces the log itself. *)

type 'a t

val create : max:int -> 'a t
val max_size : 'a t -> int
val size : 'a t -> int
val is_empty : 'a t -> bool
val full : 'a t -> bool

val add : 'a t -> 'a -> unit
(** Raises [Invalid_argument] if full — the scheduler must fire first. *)

val take : 'a t -> 'a list
(** The batch in ready order (FIFO), leaving the batcher empty. *)
