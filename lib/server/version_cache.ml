(* Last-committed versions, keyed by lock key. See version_cache.mli. *)

type version = { value : int64; lsn : int; writer : int }

type t = { table : (string, version) Hashtbl.t }

let create () = { table = Hashtbl.create 256 }

let prime t ~key ~value =
  if not (Hashtbl.mem t.table key) then
    (* First write ever to this cell: the pre-image is the last committed
       value, attributable to no writer and durable from the start. *)
    Hashtbl.replace t.table key { value; lsn = 0; writer = -1 }

let put t ~key ~value ~lsn ~writer =
  Hashtbl.replace t.table key { value; lsn; writer }

let find t ~key = Hashtbl.find_opt t.table key

let size t = Hashtbl.length t.table
