(** The scheduler's view of a transaction engine.

    The server loop is engine-agnostic: it runs the same step lists over
    the single-log engine ({!Rvm_core.Rvm}) or the sharded multi-log
    engine ({!Rvm_shard.Multi}), whose transaction interfaces coincide —
    a [gtid] is an [int] like a [tid], a cross-shard commit is still one
    [end_txn]. [flush] is the batch-closing force: one log force on the
    single engine, one overlapped round of per-shard forces (plus
    resolution of the cross-shard commits it made durable) on the sharded
    one. [spool_pressure] feeds admission control; the sharded engine
    reports the hottest shard. [commit_lsn] / [durable_lsn] expose the
    engine's logical-commit counter and durable horizon — the gap between
    them is the early-lock-release window: locks released, acks pending.

    The truncation quartet is the scheduler's background-task slot:
    [truncation_step] advances the engine's resumable truncation state
    machine by one bounded unit of work (per due shard, on its lane, for
    the sharded engine), [truncation_due] / [truncation_urgent] are its
    pacing and emergency triggers, and [truncate] is the synchronous
    fallback when occupancy reaches [truncation_critical]. *)

type t = {
  name : string;
  begin_txn : mode:Rvm_core.Types.restore_mode -> int;
  set_range : int -> addr:int -> len:int -> unit;
  load : addr:int -> len:int -> Bytes.t;
  store : addr:int -> Bytes.t -> unit;
  end_txn : int -> mode:Rvm_core.Types.commit_mode -> unit;
  abort : int -> unit;
  flush : unit -> unit;
  commit_lsn : unit -> int;
  durable_lsn : unit -> int;
  spool_pressure : unit -> float;
  log_occupancy : unit -> float;
  truncation_step : unit -> [ `Progress | `Blocked | `Idle ];
  truncation_due : unit -> bool;
  truncation_urgent : unit -> bool;
  truncate : unit -> unit;
  shards : int;  (** 1 for the single-log engine *)
}

val of_rvm : Rvm_core.Rvm.t -> t
val of_multi : Rvm_shard.Multi.t -> t
