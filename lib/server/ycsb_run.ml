module Clock = Rvm_util.Clock
module Cost_model = Rvm_util.Cost_model
module Rng = Rvm_util.Rng
module Mem_device = Rvm_disk.Mem_device
module Device = Rvm_disk.Device
module Stack = Rvm_disk.Stack
module Rvm = Rvm_core.Rvm
module Options = Rvm_core.Options
module Types = Rvm_core.Types
module Vm_sim = Rvm_vm.Vm_sim
module Rds = Rvm_alloc.Rds
module Pbtree = Rvm_pds.Pbtree
module Ycsb = Rvm_workload.Ycsb
module Lock_mgr = Rvm_layers.Lock_mgr
module Registry = Rvm_obs.Registry
module Counter = Rvm_obs.Counter
module Json = Rvm_obs.Json

type config = {
  mix : Ycsb.mix;
  records : int;
  value_len : int;
  scan_max : int;
  degree : int;
  requests : int;
  seed : int64;
  load : Server.load;
  batch_max : int;
  max_inflight : int;
  max_queue : int;
  backpressure : float;
  backoff_base_us : float;
  cpu_per_op_us : float;
  log_size : int;
  mem_fraction : float;
  background_truncation : bool;
  elr : bool;
}

let default_config =
  {
    mix = Ycsb.A;
    records = 10_000;
    value_len = 64;
    scan_max = 20;
    degree = 8;
    requests = 400;
    seed = 42L;
    load = Server.Open_loop 40.;
    batch_max = Scheduler.default_config.Scheduler.batch_max;
    max_inflight = Admission.default.Admission.max_inflight;
    max_queue = Admission.default.Admission.max_queue;
    backpressure = Admission.default.Admission.backpressure;
    backoff_base_us = Scheduler.default_config.Scheduler.backoff_base_us;
    cpu_per_op_us = Scheduler.default_config.Scheduler.cpu_per_op_us;
    log_size = 8 * 1024 * 1024;
    mem_fraction = 0.25;
    background_truncation = true;
    elr = true;
  }

type result = {
  cfg : config;
  committed : int;
  shed : int;
  aborts : int;
  abort_rate : float;
  batches : int;
  duration_us : float;
  throughput_tps : float;
  mean_latency_us : float;
  p50_latency_us : float;
  p95_latency_us : float;
  p99_latency_us : float;
  log_writes : int;
  log_syncs : int;
  syncs_per_commit : float;
  vm_faults : int;
  vm_evictions : int;
  vm_pageouts : int;
  heap_allocated_bytes : int;
  heap_free_bytes : int;
  heap_free_list : int;
  tree_length : int;
  splits : int;
  merges : int;
  serial_equal : bool;
}

type world = {
  rvm : Rvm.t;
  engine : Engine.t;
  clock : Clock.t;
  obs : Registry.t;
  heap : Rds.t;
  tree : Pbtree.t;
  vm : Vm_sim.t option;
  log_dev : Device.t;
}

let page_size = 4096
let heap_base = 16 * page_size

(* Rds footprint per record: key cell (~40B for "user%010d"), value cell
   (header + length word + padded payload), plus the record's share of
   leaf/internal node slots and separator copies at ~2/3 occupancy. The
   3/2 slack covers fragmentation and the D/E insert tail. *)
let heap_len_of cfg =
  let per_record = (176 + cfg.value_len) * 3 / 2 in
  let raw = (cfg.records * per_record) + (1 lsl 20) in
  ((raw / page_size) + 1) * page_size

let options_of () =
  {
    Options.default with
    (* Inline reclamation during the load; the scheduler's background
       slot takes over for the measured run (see Server.options_of). *)
    Options.auto_truncate = true;
    truncation_mode = Types.Incremental;
  }

(* Bulk-load [records] keys in ascending order, batched [No_flush] with a
   single force at the end — the tree is built before the clock starts,
   so the sweep measures steady-state serving over a warm store. *)
let load_tree cfg rvm tree =
  let i = ref 0 in
  while !i < cfg.records do
    let stop = min cfg.records (!i + 2_000) in
    let tid = Rvm.begin_transaction rvm ~mode:Types.No_restore in
    while !i < stop do
      Pbtree.put tree tid ~key:(Ycsb.key_of !i)
        ~value:(Ycsb.value ~len:cfg.value_len ~ver:1);
      incr i
    done;
    Rvm.end_transaction rvm tid ~mode:Types.No_flush
  done;
  Rvm.flush rvm;
  Rvm.truncate rvm

let build_world cfg =
  if cfg.records <= 0 then invalid_arg "Ycsb_run: records must be positive";
  let clock = Clock.simulated () in
  let model = Cost_model.dec5000 in
  let obs = Registry.create () in
  let heap_len = heap_len_of cfg in
  let log_outer =
    Stack.compose
      [ Stack.with_latency ~clock ~disk:model.Cost_model.log_disk () ]
      (Mem_device.create ~name:"log" ~size:cfg.log_size ())
  in
  let seg_dev =
    Stack.compose
      [ Stack.with_latency ~seek_fraction:0.08 ~sector:page_size ~clock
          ~disk:model.Cost_model.data_disk () ]
      (Mem_device.create ~name:"seg" ~size:(heap_len + page_size) ())
  in
  (* The paging pressure the paper's section 7.1 asks about: physical
     frames are a fraction of the heap's pages, so the Zipf-cold tail of
     a large key population faults and evicts through the paging disk. *)
  let vm =
    if cfg.mem_fraction <= 0. || cfg.mem_fraction >= 1. then None
    else
      let pages = heap_len / page_size in
      let frames =
        max 64 (int_of_float (float_of_int pages *. cfg.mem_fraction))
      in
      Some
        (Vm_sim.create ~clock ~model
           {
             Vm_sim.physical_pages = frames;
             page_size;
             fault_disk = model.Cost_model.paging_disk;
             evict_disk = model.Cost_model.paging_disk;
             evict_in_background = true;
           })
  in
  Clock.suspend clock @@ fun () ->
  Rvm.create_log log_outer;
  let rvm =
    Rvm.initialize ~options:(options_of ()) ~clock ~model ~obs ?vm
      ~log:log_outer
      ~resolve:(fun _ -> seg_dev)
      ()
  in
  ignore (Rvm.map rvm ~vaddr:heap_base ~seg:1 ~seg_off:0 ~len:heap_len ());
  let tid = Rvm.begin_transaction rvm ~mode:Types.Restore in
  let heap = Rds.init rvm tid ~base:heap_base ~len:heap_len in
  let tree = Pbtree.create rvm heap tid ~degree:cfg.degree in
  Rvm.end_transaction rvm tid ~mode:Types.Flush;
  load_tree cfg rvm tree;
  Rvm.set_options rvm (fun o ->
      { o with Options.auto_truncate = not cfg.background_truncation });
  Option.iter Vm_sim.reset_counters vm;
  (* Structural counters and paging counters restart at zero: the result
     row reports what the measured run did, not the bulk load. *)
  let s = Pbtree.stats tree in
  s.Pbtree.splits <- 0;
  s.Pbtree.merges <- 0;
  s.Pbtree.borrows <- 0;
  { rvm; engine = Engine.of_rvm rvm; clock; obs; heap; tree; vm;
    log_dev = log_outer }

let tree_lock = "btree"

(* Step lists for each YCSB op, compiled by the scheduler plug.

   Lock granularity: in mixes with no inserts (A/B/C/F) every leaf
   address is stable for the whole run — replacing a value never moves a
   node — so point ops lock just their leaf ("n:<addr>") and disjoint
   keys proceed in parallel. Mixes D and E insert, and an insert can
   split any node on its root-to-leaf path, so structural mixes fall
   back to one tree-level lock: inserts exclusive, reads and scans
   shared. Read-modify-write takes the leaf Shared for the read and
   upgrades to Exclusive for the write; two RMWs on one leaf deadlock on
   the upgrade and resolve through the scheduler's abort-retry path. *)
let plug_of cfg (tree : Pbtree.t) =
  let structural = match cfg.mix with Ycsb.D | Ycsb.E -> true | _ -> false in
  let stash : (int, string option) Hashtbl.t = Hashtbl.create 64 in
  let lk key =
    if structural then tree_lock
    else "n:" ^ string_of_int (Pbtree.leaf_addr tree ~key)
  in
  fun (s : Request.spec) ->
    match s.Request.kind with
    | Request.Ycsb op -> (
      match op with
      | Ycsb.Read key ->
        [
          Scheduler.Lock (Lock_mgr.Shared, lk key);
          Scheduler.Run (fun _ _ -> ignore (Pbtree.get tree ~key));
        ]
      | Ycsb.Update (key, value) ->
        [
          Scheduler.Lock (Lock_mgr.Exclusive, lk key);
          Scheduler.Run (fun _ tid -> Pbtree.put tree tid ~key ~value);
        ]
      | Ycsb.Insert (key, value) ->
        [
          Scheduler.Lock (Lock_mgr.Exclusive, tree_lock);
          Scheduler.Run (fun _ tid -> Pbtree.put tree tid ~key ~value);
        ]
      | Ycsb.Scan (lo, n) ->
        [
          Scheduler.Lock (Lock_mgr.Shared, lk lo);
          Scheduler.Run (fun _ _ -> ignore (Pbtree.scan tree ~lo ~n ()));
        ]
      | Ycsb.Rmw key ->
        let k = lk key in
        [
          Scheduler.Lock (Lock_mgr.Shared, k);
          Scheduler.Run
            (fun r _ ->
              Hashtbl.replace stash r.Request.spec.Request.id
                (Pbtree.get tree ~key));
          Scheduler.Lock (Lock_mgr.Exclusive, k);
          Scheduler.Run
            (fun r tid ->
              let id = r.Request.spec.Request.id in
              let old = Option.join (Hashtbl.find_opt stash id) in
              Hashtbl.remove stash id;
              Pbtree.put tree tid ~key
                ~value:(Ycsb.rmw_next ~value_len:cfg.value_len old));
        ])
    | _ -> []

let scheduler_of cfg w =
  let rng = Rng.create ~seed:cfg.seed in
  let gen_rng = Rng.split rng in
  let arrival_rng = Rng.split rng in
  let backoff_rng = Rng.split rng in
  let g =
    Ycsb.create ~rng:gen_rng ~mix:cfg.mix ~records:cfg.records
      ~value_len:cfg.value_len ~scan_max:cfg.scan_max
  in
  let gen =
    Request.of_fn (fun ~id ->
        {
          Request.id;
          kind = Request.Ycsb (Ycsb.next g);
          account = 0;
          account2 = 0;
          teller = 0;
          delta = 0L;
        })
  in
  let start_us = Clock.now_us w.clock in
  let arrivals =
    match cfg.load with
    | Server.Open_loop rate_tps ->
      Arrivals.open_loop ~start_us ~rate_tps ~requests:cfg.requests
        ~rng:arrival_rng ()
    | Server.Closed_loop { sessions; think_us } ->
      Arrivals.closed_loop ~start_us ~sessions ~think_us
        ~requests:cfg.requests ~rng:arrival_rng ()
  in
  let admission =
    Admission.create ~obs:w.obs
      {
        Admission.max_inflight = cfg.max_inflight;
        max_queue = cfg.max_queue;
        backpressure = cfg.backpressure;
      }
  in
  let scfg =
    {
      Scheduler.default_config with
      Scheduler.batch_max = cfg.batch_max;
      backoff_base_us = cfg.backoff_base_us;
      cpu_per_op_us = cfg.cpu_per_op_us;
      background_truncation = cfg.background_truncation;
      elr = cfg.elr;
    }
  in
  (* The placement is TPC-A machinery the plug never touches; a
     one-account layout satisfies the scheduler's interface. *)
  let placement =
    Placement.make
      ~layouts:
        [| Rvm_workload.Tpca.layout ~accounts:1 ~base:heap_base ~page_size |]
  in
  Scheduler.create ~plug:(plug_of cfg w.tree) ~cfg:scfg ~engine:w.engine
    ~clock:w.clock ~obs:w.obs ~lock_mgr:(Lock_mgr.create ()) ~placement
    ~admission ~arrivals ~gen ~rng:backoff_rng ()

(* Serial reference: replay the committed ops in commit (spool/LSN)
   order against the plain hash-table model and demand the recoverable
   tree's full contents match byte-for-byte. *)
let serial_check cfg w committed_ops =
  let model = Hashtbl.create (2 * cfg.records) in
  for i = 0 to cfg.records - 1 do
    Hashtbl.replace model (Ycsb.key_of i)
      (Ycsb.value ~len:cfg.value_len ~ver:1)
  done;
  List.iter (Ycsb.apply_model model ~value_len:cfg.value_len) committed_ops;
  Pbtree.length w.tree = Hashtbl.length model
  && Pbtree.fold w.tree ~init:true ~f:(fun ok ~key ~value ->
         ok && Hashtbl.find_opt model key = Some value)

(* Heap occupancy and paging pressure, published as counters so they
   land in the registry dump (`rvmutl serve`'s --stats output) next to
   the engine's own counters. *)
let publish_gauges w =
  let set name v = Counter.add (Registry.counter w.obs name) v in
  (* vm counters first: the rds occupancy walk below faults in every
     heap page and would inflate them. *)
  Option.iter
    (fun vm ->
      set "vm.faults" (Vm_sim.faults vm);
      set "vm.evictions" (Vm_sim.evictions vm);
      set "vm.pageouts" (Vm_sim.pageouts vm))
    w.vm;
  set "rds.allocated.bytes" (Rds.allocated_bytes w.heap);
  set "rds.free.bytes" (Rds.free_bytes w.heap);
  set "rds.free.list.length" (Rds.free_list_length w.heap);
  set "rds.blocks" (Rds.block_count w.heap)

let run_with_world cfg =
  let w = build_world cfg in
  let sched = scheduler_of cfg w in
  let ops = ref [] in
  Scheduler.set_hooks sched
    ~on_spool:(fun r ->
      match r.Request.spec.Request.kind with
      | Request.Ycsb op -> ops := op :: !ops
      | _ -> ())
    ~on_ack:(fun _ -> ());
  let writes0 = w.log_dev.Device.stats.Device.writes in
  let syncs0 = w.log_dev.Device.stats.Device.syncs in
  let tally = Scheduler.run sched in
  let log_writes = w.log_dev.Device.stats.Device.writes - writes0 in
  let log_syncs = w.log_dev.Device.stats.Device.syncs - syncs0 in
  (* Paging counters are sampled first: the gauge pass below walks every
     heap block and the serial-reference replay walks every leaf — both
     would otherwise be charged to the run. *)
  let vm_faults = match w.vm with Some vm -> Vm_sim.faults vm | None -> 0 in
  let vm_evictions =
    match w.vm with Some vm -> Vm_sim.evictions vm | None -> 0
  in
  let vm_pageouts =
    match w.vm with Some vm -> Vm_sim.pageouts vm | None -> 0
  in
  publish_gauges w;
  let lat = Array.copy tally.Scheduler.latencies_us in
  Array.sort compare lat;
  let n = Array.length lat in
  let committed = tally.Scheduler.committed in
  let ts = Pbtree.stats w.tree in
  let serial_equal = serial_check cfg w (List.rev !ops) in
  let result =
    {
      cfg;
      committed;
      shed = tally.Scheduler.shed;
      aborts = tally.Scheduler.aborts;
      abort_rate =
        (let total = tally.Scheduler.aborts + committed in
         if total = 0 then 0.
         else float_of_int tally.Scheduler.aborts /. float_of_int total);
      batches = tally.Scheduler.batches;
      duration_us = tally.Scheduler.end_us;
      throughput_tps =
        (if tally.Scheduler.end_us > 0. then
           float_of_int committed /. (tally.Scheduler.end_us /. 1e6)
         else 0.);
      mean_latency_us =
        (if n = 0 then 0.
         else Array.fold_left ( +. ) 0. lat /. float_of_int n);
      p50_latency_us = Server.percentile lat 50.;
      p95_latency_us = Server.percentile lat 95.;
      p99_latency_us = Server.percentile lat 99.;
      log_writes;
      log_syncs;
      syncs_per_commit =
        (if committed = 0 then 0.
         else float_of_int log_syncs /. float_of_int committed);
      vm_faults;
      vm_evictions;
      vm_pageouts;
      heap_allocated_bytes = Rds.allocated_bytes w.heap;
      heap_free_bytes = Rds.free_bytes w.heap;
      heap_free_list = Rds.free_list_length w.heap;
      tree_length = Pbtree.length w.tree;
      splits = ts.Pbtree.splits;
      merges = ts.Pbtree.merges;
      serial_equal;
    }
  in
  (result, w)

let run cfg = fst (run_with_world cfg)

let sweep ~base mixes = List.map (fun mix -> run { base with mix }) mixes

let result_to_json r =
  let c = r.cfg in
  Json.Obj
    [
      ("mix", Json.String (Ycsb.mix_name c.mix));
      ("records", Json.Int c.records);
      ("value_len", Json.Int c.value_len);
      ("scan_max", Json.Int c.scan_max);
      ("degree", Json.Int c.degree);
      ("requests", Json.Int c.requests);
      ("seed", Json.Int (Int64.to_int c.seed));
      ("load", Json.String (Server.load_name c.load));
      ("batch_max", Json.Int c.batch_max);
      ("mem_fraction", Json.Float c.mem_fraction);
      ("elr", Json.Bool c.elr);
      ("committed", Json.Int r.committed);
      ("shed", Json.Int r.shed);
      ("aborts", Json.Int r.aborts);
      ("abort_rate", Json.Float r.abort_rate);
      ("batches", Json.Int r.batches);
      ("duration_us", Json.Float r.duration_us);
      ("throughput_tps", Json.Float r.throughput_tps);
      ("mean_latency_us", Json.Float r.mean_latency_us);
      ("p50_latency_us", Json.Float r.p50_latency_us);
      ("p95_latency_us", Json.Float r.p95_latency_us);
      ("p99_latency_us", Json.Float r.p99_latency_us);
      ("log_writes", Json.Int r.log_writes);
      ("log_syncs", Json.Int r.log_syncs);
      ("syncs_per_commit", Json.Float r.syncs_per_commit);
      ("vm_faults", Json.Int r.vm_faults);
      ("vm_evictions", Json.Int r.vm_evictions);
      ("vm_pageouts", Json.Int r.vm_pageouts);
      ("heap_allocated_bytes", Json.Int r.heap_allocated_bytes);
      ("heap_free_bytes", Json.Int r.heap_free_bytes);
      ("heap_free_list", Json.Int r.heap_free_list);
      ("tree_length", Json.Int r.tree_length);
      ("splits", Json.Int r.splits);
      ("merges", Json.Int r.merges);
      ("serial_equal", Json.Bool r.serial_equal);
    ]

let pp_table fmt results =
  Format.fprintf fmt
    "%-7s %8s | %9s %9s %6s %6s | %9s %9s %9s | %9s %8s %6s %6s@\n" "mix"
    "records" "committed" "tps" "shed" "abort" "p50(ms)" "p95(ms)" "p99(ms)"
    "syncs/txn" "faults" "splits" "serial";
  Format.fprintf fmt "%s@\n" (String.make 118 '-');
  List.iter
    (fun r ->
      Format.fprintf fmt
        "%-7s %8d | %9d %9.1f %6d %6d | %9.2f %9.2f %9.2f | %9.3f %8d %6d \
         %6s@\n"
        (Ycsb.mix_name r.cfg.mix) r.cfg.records r.committed r.throughput_tps
        r.shed r.aborts
        (r.p50_latency_us /. 1e3)
        (r.p95_latency_us /. 1e3)
        (r.p99_latency_us /. 1e3)
        r.syncs_per_commit r.vm_faults r.splits
        (if r.serial_equal then "ok" else "FAIL"))
    results
