module Types = Rvm_core.Types
module Clock = Rvm_util.Clock
module Rng = Rvm_util.Rng
module Lock_mgr = Rvm_layers.Lock_mgr
module Tpca = Rvm_workload.Tpca
module Registry = Rvm_obs.Registry
module Trace = Rvm_obs.Trace
module Counter = Rvm_obs.Counter
module Histogram = Rvm_obs.Histogram

exception Stuck of string

type config = {
  batch_max : int;
  backoff_base_us : float;
  backoff_cap : int;
  cpu_per_op_us : float;
  max_iterations : int;
  truncation_steps_per_quantum : int;
  truncation_spool_trigger : float;
  truncation_min_gap_us : float;
  background_truncation : bool;
  elr : bool;
}

let default_config =
  {
    batch_max = 8;
    backoff_base_us = 1_000.;
    backoff_cap = 6;
    cpu_per_op_us = 25.;
    max_iterations = 20_000_000;
    truncation_steps_per_quantum = 1;
    truncation_spool_trigger = 0.5;
    truncation_min_gap_us = 200_000.;
    background_truncation = true;
    elr = true;
  }

let validate_config c =
  if c.batch_max <= 0 then invalid_arg "Scheduler: batch_max";
  if c.backoff_base_us <= 0. then invalid_arg "Scheduler: backoff_base_us";
  if c.backoff_cap < 0 then invalid_arg "Scheduler: backoff_cap";
  if c.cpu_per_op_us < 0. then invalid_arg "Scheduler: cpu_per_op_us";
  if c.max_iterations <= 0 then invalid_arg "Scheduler: max_iterations";
  if c.truncation_steps_per_quantum <= 0 then
    invalid_arg "Scheduler: truncation_steps_per_quantum";
  if c.truncation_spool_trigger <= 0. then
    invalid_arg "Scheduler: truncation_spool_trigger";
  if c.truncation_min_gap_us < 0. then
    invalid_arg "Scheduler: truncation_min_gap_us"

(* The executable form of a request: lock acquisitions interleaved with
   the recoverable-memory updates they cover, consumed front to back. *)
type update =
  | Upd_account of int * int64
  | Upd_teller of int * int64
  | Upd_branch of int * int64
  | Upd_audit

type step = Lock of Lock_mgr.mode * string | Update of update | Run of (Request.t -> int -> unit)

let acct_key i = "a:" ^ string_of_int i
let teller_key i = "t:" ^ string_of_int i
let branch_key i = "b:" ^ string_of_int i

(* Lock identities come from the placement: on a sharded world teller 3 of
   shard 0 and teller 3 of shard 1 are distinct records and must not
   serialize against each other. *)
let tpca_steps_of pl (s : Request.spec) =
  match s.kind with
  | Request.Payment ->
    (* TPC-A reads the teller and branch rows (the balance fetch precedes
       the update) before writing them: those read steps take Shared mode
       and upgrade to Exclusive only at the write — two payments on one
       hot teller overlap their read phases instead of serializing from
       the first touch. The upgrade is where the two-shared-holders
       deadlock lives; the lock manager hands the second upgrader
       [`Deadlock] and the retry path resolves it. *)
    let branch = s.teller mod Tpca.branches in
    let anchor = s.account in
    let tk = teller_key (Placement.teller_id pl ~anchor s.teller) in
    let bk = branch_key (Placement.branch_id pl ~anchor branch) in
    [
      Lock (Lock_mgr.Exclusive, acct_key s.account);
      Update (Upd_account (s.account, s.delta));
      Lock (Lock_mgr.Shared, tk);
      Lock (Lock_mgr.Shared, bk);
      Lock (Lock_mgr.Exclusive, tk);
      Update (Upd_teller (s.teller, s.delta));
      Lock (Lock_mgr.Exclusive, bk);
      Update (Upd_branch (branch, s.delta));
      Update Upd_audit;
    ]
  | Request.Transfer ->
    [
      Lock (Lock_mgr.Exclusive, acct_key s.account);
      Update (Upd_account (s.account, s.delta));
      Lock (Lock_mgr.Exclusive, acct_key s.account2);
      Update (Upd_account (s.account2, Int64.neg s.delta));
      Update Upd_audit;
    ]
  | Request.Lookup -> []  (* read-only fast path: never enters the step loop *)
  | Request.Ycsb _ -> []  (* routed to the workload plug, not here *)

(* The balance cells a request writes, as (lock key, address) pairs — the
   entries the version cache publishes at commit-spool time. *)
let written_cells pl (s : Request.spec) =
  match s.kind with
  | Request.Payment ->
    let branch = s.teller mod Tpca.branches in
    let anchor = s.account in
    [
      (acct_key s.account, Placement.account_addr pl s.account);
      ( teller_key (Placement.teller_id pl ~anchor s.teller),
        Placement.teller_addr pl ~anchor s.teller );
      ( branch_key (Placement.branch_id pl ~anchor branch),
        Placement.branch_addr pl ~anchor branch );
    ]
  | Request.Transfer ->
    [
      (acct_key s.account, Placement.account_addr pl s.account);
      (acct_key s.account2, Placement.account_addr pl s.account2);
    ]
  | Request.Lookup | Request.Ycsb _ -> []

type tally = {
  committed : int;
  reads : int;
  shed : int;
  aborts : int;
  batches : int;
  backpressure_deferrals : int;
  latencies_us : float array;  (** one per committed request, commit order *)
  read_latencies_us : float array;  (** one per completed lookup, ack order *)
  end_us : float;
  iterations : int;
}

type t = {
  cfg : config;
  eng : Engine.t;
  clock : Clock.t;
  obs : Registry.t;
  lm : Lock_mgr.t;
  pl : Placement.t;
  plug : Request.spec -> step list;
      (* step source for non-TPC-A request kinds (the YCSB workload):
         locks at the granularity the workload chooses, interleaved with
         [Run] closures that execute against its own recoverable state *)
  adm : Request.t Admission.t;
  arr : Arrivals.t;
  gen : Request.gen;
  rng : Rng.t;  (* backoff jitter stream *)
  vc : Version_cache.t;
  runnable : Request.t Queue.t;
  mutable parked : Request.t list;
  mutable retries : (float * Request.t) list;  (* sorted by (due, id) *)
  mutable pending_reads : Request.t list;
      (* lookups whose snapshot observed a spooled-but-unforced commit:
         the ack-dependency rule holds their completion until the
         engine's durable horizon covers [dep_lsn] (newest first) *)
  batch : Request.t Batcher.t;
  steps : (int, step list) Hashtbl.t;
  mutable on_spool : Request.t -> unit;
      (* fired when a commit record reaches the spool (logical commit);
         the crash explorer hangs its commit-order recorder here *)
  mutable on_ack : Request.t -> unit;
      (* fired when a request's outcome is released to the client — after
         durability for writes, after the dependency check for reads *)
  mutable on_quantum : unit -> unit;
      (* fired once per scheduler quantum, after the clock may have
         advanced: the monitoring tick. Must not charge simulated time —
         observation may never perturb the run it observes. *)
  (* tallies *)
  mutable committed : int;
  mutable reads : int;
  mutable shed : int;
  mutable aborts : int;
  mutable batches : int;
  mutable backpressure_deferrals : int;
  mutable latencies : float list;  (* newest first *)
  mutable read_latencies : float list;  (* newest first *)
  mutable iterations : int;
  mutable trunc_blocked_at : int option;
  mutable trunc_last_pause_us : float;
      (* when the slot last charged device time: pausing bursts are spread
         at least [truncation_min_gap_us] apart so one reclaim cycle's
         syncs and forces don't cluster into a single effective stall *)
      (* [committed] tally when the truncator last reported [`Blocked]:
         stepping again before another commit resolves would stall on the
         same pinned page, so the slot stays quiet until the tally moves. *)
  (* observability handles *)
  c_committed : Counter.t;
  c_shed : Counter.t;
  c_retry : Counter.t;
  c_admitted : Counter.t;
  c_backpressure : Counter.t;
  c_elr : Counter.t;
  c_snapshot : Counter.t;
  h_latency : Histogram.t;
  h_read_latency : Histogram.t;
  h_queue_wait : Histogram.t;
  h_batch_size : Histogram.t;
  h_trunc_pause : Histogram.t;
  h_trunc_steps : Histogram.t;
}

let create ?(plug = fun _ -> []) ~cfg ~engine ~clock ~obs ~lock_mgr ~placement
    ~admission ~arrivals ~gen ~rng () =
  validate_config cfg;
  {
    cfg;
    eng = engine;
    clock;
    obs;
    lm = lock_mgr;
    pl = placement;
    plug;
    adm = admission;
    arr = arrivals;
    gen;
    rng;
    vc = Version_cache.create ();
    runnable = Queue.create ();
    parked = [];
    retries = [];
    pending_reads = [];
    batch = Batcher.create ~max:cfg.batch_max;
    steps = Hashtbl.create 64;
    on_spool = ignore;
    on_ack = ignore;
    on_quantum = ignore;
    committed = 0;
    reads = 0;
    shed = 0;
    aborts = 0;
    batches = 0;
    backpressure_deferrals = 0;
    latencies = [];
    read_latencies = [];
    iterations = 0;
    trunc_blocked_at = None;
    trunc_last_pause_us = neg_infinity;
    c_committed = Registry.counter obs "server.committed";
    c_shed = Registry.counter obs "server.shed";
    c_retry = Registry.counter obs "server.retry";
    c_admitted = Registry.counter obs "server.admitted";
    c_backpressure = Registry.counter obs "server.backpressure.defer";
    c_elr = Registry.counter obs "elr.released_early";
    c_snapshot = Registry.counter obs "mvcc.snapshot_reads";
    h_latency = Registry.histogram obs "server.latency.us";
    h_read_latency = Registry.histogram obs "server.read.latency.us";
    h_queue_wait = Registry.histogram obs "server.queue.wait.us";
    h_batch_size = Registry.histogram obs "server.batch.size";
    h_trunc_pause = Registry.histogram obs "truncation.pause.us";
    h_trunc_steps = Registry.histogram obs "truncation.steps.per.quantum";
  }

let steps_of t (s : Request.spec) =
  match s.Request.kind with
  | Request.Ycsb _ -> t.plug s
  | _ -> tpca_steps_of t.pl s

let set_hooks t ~on_spool ~on_ack =
  t.on_spool <- on_spool;
  t.on_ack <- on_ack

let set_on_quantum t f = t.on_quantum <- f

let now t = Clock.now_us t.clock
let charge t = Clock.charge_cpu t.clock t.cfg.cpu_per_op_us

(* --- recoverable-memory updates (addresses per Placement) --- *)

let read_i64 t ~addr = Bytes.get_int64_le (t.eng.Engine.load ~addr ~len:8) 0

let write_i64 t ~addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  t.eng.Engine.store ~addr b

(* Teller, branch and audit structures are placed on the shard of the
   request's primary account (its "anchor"), so Payments stay single-shard
   and only a Transfer whose accounts route to different shards crosses.

   Each balance write first primes the version cache with the cell's
   pre-image: under 2PL the writer holds the exclusive lock, so the value
   read here is the last committed one — a lock-free reader arriving
   mid-transaction finds that committed version, never the in-place
   uncommitted bytes. *)
let do_update t (r : Request.t) tid u =
  let anchor = r.Request.spec.Request.account in
  match u with
  | Upd_account (i, d) ->
    let addr = Placement.account_addr t.pl i in
    t.eng.Engine.set_range tid ~addr ~len:Tpca.account_size;
    let v = read_i64 t ~addr in
    Version_cache.prime t.vc ~key:(acct_key i) ~value:v;
    write_i64 t ~addr (Int64.add v d);
    write_i64 t ~addr:(addr + 8) (Int64.of_int r.Request.spec.Request.id)
  | Upd_teller (i, d) ->
    let addr = Placement.teller_addr t.pl ~anchor i in
    t.eng.Engine.set_range tid ~addr ~len:Tpca.balance_size;
    let v = read_i64 t ~addr in
    Version_cache.prime t.vc
      ~key:(teller_key (Placement.teller_id t.pl ~anchor i))
      ~value:v;
    write_i64 t ~addr (Int64.add v d)
  | Upd_branch (i, d) ->
    let addr = Placement.branch_addr t.pl ~anchor i in
    t.eng.Engine.set_range tid ~addr ~len:Tpca.balance_size;
    let v = read_i64 t ~addr in
    Version_cache.prime t.vc
      ~key:(branch_key (Placement.branch_id t.pl ~anchor i))
      ~value:v;
    write_i64 t ~addr (Int64.add v d)
  | Upd_audit ->
    (* The slot is drawn at write time and the write is followed by the
       commit within the same scheduler turn, so no two live transactions
       ever hold set_ranges over one slot, even after wrap-around. *)
    let addr = Placement.audit_next t.pl ~anchor in
    t.eng.Engine.set_range tid ~addr ~len:Tpca.audit_size;
    r.Request.audit_addr <- addr;
    let s = r.Request.spec in
    let e = Bytes.create Tpca.audit_size in
    Bytes.set_int64_le e 0 (Int64.of_int s.Request.account);
    Bytes.set_int64_le e 8 (Int64.of_int s.Request.teller);
    Bytes.set_int64_le e 16 s.Request.delta;
    (* id + 1, so a zeroed (never-written) slot is distinguishable from
       request 0's entry — the crash explorer tests recovered membership
       by reading this word back *)
    Bytes.set_int64_le e 24 (Int64.of_int (s.Request.id + 1));
    t.eng.Engine.store ~addr e

(* --- lifecycle --- *)

let wake_parked t =
  let ps =
    List.sort
      (fun (a : Request.t) (b : Request.t) ->
        compare a.Request.spec.Request.id b.Request.spec.Request.id)
      t.parked
  in
  t.parked <- [];
  List.iter
    (fun (r : Request.t) ->
      r.Request.status <- Request.Running;
      Queue.push r t.runnable)
    ps

let req_attrs (r : Request.t) =
  [
    ("req", Trace.Int r.Request.spec.Request.id);
    ("kind", Trace.String (Request.kind_name r.Request.spec.Request.kind));
    ("attempts", Trace.Int r.Request.attempts);
  ]

(* A request's commit is durable: account its latency, let a closed-loop
   session move on. The admission slot was already freed at the commit
   point — in-flight counts transactions that are executing, not ones
   parked in the batcher awaiting the force. *)
let finish t (r : Request.t) =
  let tnow = now t in
  r.Request.status <- Request.Committed;
  r.Request.done_us <- tnow;
  Hashtbl.remove t.steps r.Request.spec.Request.id;
  Arrivals.complete t.arr ~now:tnow;
  t.committed <- t.committed + 1;
  Counter.incr t.c_committed;
  let lat = tnow -. r.Request.arrival_us in
  t.latencies <- lat :: t.latencies;
  Histogram.observe t.h_latency lat;
  t.on_ack r

(* A lookup's snapshot is covered by the durable horizon: its values can
   no longer be lost to a crash, so the answer may leave the server. *)
let finish_read t (r : Request.t) =
  let tnow = now t in
  r.Request.status <- Request.Committed;
  r.Request.done_us <- tnow;
  Arrivals.complete t.arr ~now:tnow;
  t.reads <- t.reads + 1;
  let lat = tnow -. r.Request.arrival_us in
  t.read_latencies <- lat :: t.read_latencies;
  Histogram.observe t.h_read_latency lat;
  t.on_ack r

let complete_reads t =
  if t.pending_reads <> [] then begin
    let d = t.eng.Engine.durable_lsn () in
    let ready, waiting =
      List.partition
        (fun (r : Request.t) -> r.Request.dep_lsn <= d)
        t.pending_reads
    in
    t.pending_reads <- waiting;
    List.iter (finish_read t) (List.rev ready)
  end

(* Publish the committed values of every cell the request wrote, under
   its commit LSN. Runs at commit-spool time, before the locks release —
   so the cache always holds the latest committed version and a lock-free
   reader can never observe a gap. *)
let publish_versions t (r : Request.t) =
  let id = r.Request.spec.Request.id in
  List.iter
    (fun (key, addr) ->
      Version_cache.put t.vc ~key ~value:(read_i64 t ~addr)
        ~lsn:r.Request.commit_lsn ~writer:id)
    (written_cells t.pl r.Request.spec)

(* Commit a request whose steps are exhausted. Batched configurations
   commit no-flush immediately and park the request in the batcher until
   the closing force; unbatched ones force the log right here.

   Early lock release: the commit record is in the spool, so commit order
   is fixed and — redo-only logging, no undo ever — nothing can roll it
   back except a crash, which rolls back every later conflicting
   transaction with it. The locks therefore drop now, stamped with this
   commit's LSN: a successor touching the same keys inherits the stamp as
   an ack dependency ([dep_lsn]) and cannot acknowledge before this
   record is forced. With [elr = false] the locks ride until
   {!flush_batch} — the contention the optimization removes. *)
let commit_ready t (r : Request.t) =
  let tid =
    match r.Request.tid with
    | Some tid -> tid
    | None -> invalid_arg "commit_ready: no live transaction"
  in
  let id = r.Request.spec.Request.id in
  if t.cfg.batch_max = 1 then begin
    Registry.span t.obs "req.root" ~attrs:(req_attrs r) (fun () ->
        t.eng.Engine.end_txn tid ~mode:Types.Flush);
    r.Request.tid <- None;
    r.Request.commit_lsn <- t.eng.Engine.commit_lsn ();
    publish_versions t r;
    t.on_spool r;
    Lock_mgr.release_all t.lm ~owner:id;
    Admission.release t.adm;
    t.batches <- t.batches + 1;
    Histogram.observe t.h_batch_size 1.;
    finish t r;
    wake_parked t;
    complete_reads t
  end
  else begin
    Registry.span t.obs "req.root" ~attrs:(req_attrs r) (fun () ->
        t.eng.Engine.end_txn tid ~mode:Types.No_flush);
    r.Request.tid <- None;
    r.Request.commit_lsn <- t.eng.Engine.commit_lsn ();
    publish_versions t r;
    r.Request.status <- Request.Ready;
    t.on_spool r;
    if t.cfg.elr then begin
      Counter.incr t.c_elr;
      Lock_mgr.release_all t.lm ~stamp:(r.Request.commit_lsn, id) ~owner:id
    end;
    Admission.release t.adm;
    Batcher.add t.batch r;
    if t.cfg.elr then wake_parked t
  end

(* Close the open batch: one force makes every no-flush commit in it
   durable, then the requests finish together. The force is also the ack
   barrier: nothing in the batch (nor any pending lookup) is released to
   its client before the durable horizon covers its commit and every
   dependency it inherited through an early-released lock. *)
let flush_batch t =
  let reqs = Batcher.take t.batch in
  if reqs <> [] then begin
    let size = List.length reqs in
    t.batches <- t.batches + 1;
    Histogram.observe t.h_batch_size (float_of_int size);
    Registry.span t.obs "server.batch.flush"
      ~attrs:[ ("size", Trace.Int size) ]
      (fun () -> t.eng.Engine.flush ());
    let d = t.eng.Engine.durable_lsn () in
    List.iter
      (fun (r : Request.t) ->
        if not t.cfg.elr then
          Lock_mgr.release_all t.lm ~owner:r.Request.spec.Request.id;
        if r.Request.commit_lsn > d || r.Request.dep_lsn > d then
          raise
            (Stuck
               (Printf.sprintf
                  "ack-dependency violated: req %d (lsn %d dep %d) past \
                   durable horizon %d"
                  r.Request.spec.Request.id r.Request.commit_lsn
                  r.Request.dep_lsn d));
        finish t r)
      reqs;
    if not t.cfg.elr then wake_parked t
  end;
  complete_reads t

let insert_retry t due (r : Request.t) =
  let key = (due, r.Request.spec.Request.id) in
  let rec ins = function
    | [] -> [ (due, r) ]
    | ((d, (x : Request.t)) :: _) as rest
      when compare key (d, x.Request.spec.Request.id) < 0 ->
      (due, r) :: rest
    | e :: rest -> e :: ins rest
  in
  t.retries <- ins t.retries

(* Deadlock victim: roll the engine transaction back, drop every lock,
   and come back after a seeded, jittered exponential backoff. *)
let abort_retry t (r : Request.t) =
  (match r.Request.tid with
  | Some tid -> t.eng.Engine.abort tid
  | None -> ());
  r.Request.tid <- None;
  (* No stamp: an aborted transaction published nothing, so its locks
     carry no dependency. Deps inherited during the attempt die with it. *)
  Lock_mgr.release_all t.lm ~owner:r.Request.spec.Request.id;
  r.Request.dep_lsn <- 0;
  r.Request.dep_writers <- [];
  r.Request.attempts <- r.Request.attempts + 1;
  t.aborts <- t.aborts + 1;
  Counter.incr t.c_retry;
  Hashtbl.replace t.steps r.Request.spec.Request.id
    (steps_of t r.Request.spec);
  let exp = min (r.Request.attempts - 1) t.cfg.backoff_cap in
  let jitter = 0.5 +. Rng.float t.rng 1.0 in
  let delay = t.cfg.backoff_base_us *. float_of_int (1 lsl exp) *. jitter in
  r.Request.status <- Request.Backoff;
  insert_retry t (now t +. delay) r;
  wake_parked t

(* The lock-free read-only fast path: one quantum, no engine transaction,
   no wait-for graph. Each cell resolves through the version cache — the
   last committed value even while a writer holds the lock mid-update —
   and the read's ack dependency is the max of the observed commit LSNs:
   if any of them sits above the durable horizon (an early-released,
   not-yet-forced commit), the answer parks in [pending_reads] until a
   force covers it. A cell with no version was never written; its durable
   image is read directly. *)
let exec_read t (r : Request.t) =
  charge t;
  let s = r.Request.spec in
  let anchor = s.Request.account in
  let branch = s.Request.teller mod Tpca.branches in
  let cells =
    [
      (acct_key s.Request.account, Placement.account_addr t.pl s.Request.account);
      ( branch_key (Placement.branch_id t.pl ~anchor branch),
        Placement.branch_addr t.pl ~anchor branch );
    ]
  in
  List.iter
    (fun (key, addr) ->
      match Version_cache.find t.vc ~key with
      | Some v ->
        if v.Version_cache.lsn > r.Request.dep_lsn then
          r.Request.dep_lsn <- v.Version_cache.lsn;
        if
          v.Version_cache.writer >= 0
          && not (List.mem v.Version_cache.writer r.Request.dep_writers)
        then r.Request.dep_writers <- v.Version_cache.writer :: r.Request.dep_writers
      | None -> ignore (read_i64 t ~addr))
    cells;
  Counter.incr t.c_snapshot;
  Admission.release t.adm;
  if r.Request.dep_lsn <= t.eng.Engine.durable_lsn () then finish_read t r
  else begin
    r.Request.status <- Request.Ready;
    t.pending_reads <- r :: t.pending_reads
  end

(* One cooperative scheduling quantum: a single lock or update step.
   Requests that can continue go back to the tail of the run queue, so
   in-flight transactions interleave round-robin — which is what makes
   lock conflicts (and transfer-order deadlocks) reachable at all. A
   transaction that ran to commit in one quantum could never be caught
   holding a lock. *)
let exec t (r : Request.t) =
  if r.Request.spec.Request.kind = Request.Lookup then exec_read t r
  else begin
    let id = r.Request.spec.Request.id in
    (match r.Request.tid with
    | None -> r.Request.tid <- Some (t.eng.Engine.begin_txn ~mode:Types.Restore)
    | Some _ -> ());
    match Hashtbl.find_opt t.steps id with
    | None | Some [] -> commit_ready t r
    | Some (step :: rest) -> (
      match step with
      | Lock (mode, key) -> (
        charge t;
        match Lock_mgr.wait_for t.lm ~owner:id ~key mode with
        | `Granted ->
          (* Inherit the key's early-release stamp: if the last writer of
             this cell released at spool time, our ack now waits for its
             force too (the commit-LSN dependency rule). *)
          (match Lock_mgr.stamp t.lm ~key with
          | Some (lsn, writer) when writer <> id ->
            if lsn > r.Request.dep_lsn then r.Request.dep_lsn <- lsn;
            if writer >= 0 && not (List.mem writer r.Request.dep_writers)
            then r.Request.dep_writers <- writer :: r.Request.dep_writers
          | _ -> ());
          Hashtbl.replace t.steps id rest;
          Queue.push r t.runnable
        | `Wait _ ->
          r.Request.status <- Request.Parked key;
          t.parked <- r :: t.parked;
          Registry.instant t.obs "server.park"
            ~attrs:[ ("req", Trace.Int id); ("key", Trace.String key) ]
        | `Deadlock -> abort_retry t r)
      | Update u ->
        let tid = Option.get r.Request.tid in
        charge t;
        do_update t r tid u;
        Hashtbl.replace t.steps id rest;
        Queue.push r t.runnable
      | Run f ->
        (* A workload-plug step: runs with every lock of the preceding
           [Lock] steps held, inside the request's engine transaction. *)
        let tid = Option.get r.Request.tid in
        charge t;
        f r tid;
        Hashtbl.replace t.steps id rest;
        Queue.push r t.runnable)
  end

(* --- arrivals, admission, retries --- *)

let start t (r : Request.t) =
  r.Request.status <- Request.Running;
  r.Request.admitted_us <- now t;
  Histogram.observe t.h_queue_wait
    (r.Request.admitted_us -. r.Request.arrival_us);
  Counter.incr t.c_admitted;
  Hashtbl.replace t.steps r.Request.spec.Request.id
    (steps_of t r.Request.spec);
  Queue.push r t.runnable

let shed t (r : Request.t) =
  r.Request.status <- Request.Shed;
  r.Request.done_us <- now t;
  t.shed <- t.shed + 1;
  Counter.incr t.c_shed;
  Registry.instant t.obs "server.overload"
    ~attrs:[ ("req", Trace.Int r.Request.spec.Request.id) ];
  Arrivals.complete t.arr ~now:(now t)

let process_due t =
  let rec arrivals () =
    match Arrivals.next_at t.arr with
    | Some at when at <= now t ->
      ignore (Arrivals.pop t.arr);
      let spec = Request.fresh t.gen in
      let r = Request.make spec ~arrival_us:at in
      let pressure = t.eng.Engine.spool_pressure () in
      (match Admission.submit t.adm ~pressure r with
      | `Admitted -> start t r
      | `Queued -> ()
      | `Overload -> shed t r);
      arrivals ()
    | _ -> ()
  in
  arrivals ();
  let rec retries () =
    match t.retries with
    | (due, r) :: rest when due <= now t ->
      t.retries <- rest;
      r.Request.status <- Request.Running;
      Queue.push r t.runnable;
      retries ()
    | _ -> ()
  in
  retries ()

let admit_from_queue t =
  let rec go () =
    let pressure = t.eng.Engine.spool_pressure () in
    match Admission.pop_ready t.adm ~pressure with
    | `Admit r ->
      start t r;
      go ()
    | `Backpressure ->
      t.backpressure_deferrals <- t.backpressure_deferrals + 1;
      Counter.incr t.c_backpressure
    | `Empty | `At_capacity -> ()
  in
  go ()

(* The background-task slot: spend a bounded amount of truncation work
   between scheduling decisions. Step CPU is charged via the clock's
   background lane ({!Clock.background}) so it rides the dispatcher's
   idle capacity, but device time the steps force — segment syncs,
   WAL-ordering log forces — still advances the simulated clock; that
   wall-clock delta is the honest per-quantum commit-path pause and
   lands in [truncation.pause.us]. The step budget doubles when spool
   pressure crosses [truncation_spool_trigger] (a loaded spool means the
   next drain will append a burst, so reclaim harder while it builds).
   If occupancy has already reached [truncation_critical], background
   pacing lost the race: fall back to one synchronous truncation — the
   exact stall the paper charges to Camelot — recorded under the
   [truncation.emergency] span and the same pause histogram. *)
let background_truncation t =
  if not t.cfg.background_truncation then ()
  else if t.eng.Engine.truncation_urgent () then begin
    let t0 = now t in
    Registry.span t.obs "truncation.emergency" (fun () ->
        t.eng.Engine.truncate ());
    Histogram.observe t.h_trunc_pause (now t -. t0);
    t.trunc_blocked_at <- None
  end
  else begin
    let blocked_fresh =
      match t.trunc_blocked_at with
      | Some c -> c = t.committed
      | None -> false
    in
    let pressured =
      t.eng.Engine.spool_pressure () >= t.cfg.truncation_spool_trigger
    in
    let gap =
      if pressured then t.cfg.truncation_min_gap_us /. 2.
      else t.cfg.truncation_min_gap_us
    in
    let gap_open = now t -. t.trunc_last_pause_us >= gap in
    if
      (not blocked_fresh) && gap_open && t.eng.Engine.truncation_due ()
    then begin
      (* The budget counts *device-pausing* steps — steps that advanced
         the simulated clock (a segment sync, a WAL-ordering log force).
         Steps that charge nothing foreground (truncator page writes land
         in write-back device caches and their CPU rides the background
         lane) are nearly free, and a plan can hold thousands of them;
         metering those at the same rate as syncs starves reclamation
         until the emergency fallback fires, which is the exact pause
         this slot exists to avoid. Free steps still get a cap so one
         quantum cannot spin unboundedly. *)
      let budget =
        if pressured then 2 * t.cfg.truncation_steps_per_quantum
        else t.cfg.truncation_steps_per_quantum
      in
      let free_cap = 16 * budget in
      let t0 = now t in
      let steps = ref 0 in
      let pauses = ref 0 in
      let continue = ref true in
      while !continue && !pauses < budget && !steps - !pauses < free_cap do
        let before = now t in
        (match
           Clock.background t.clock (fun () ->
               t.eng.Engine.truncation_step ())
         with
        | `Progress ->
          incr steps;
          t.trunc_blocked_at <- None
        | `Blocked ->
          incr steps;
          t.trunc_blocked_at <- Some t.committed;
          continue := false
        | `Idle -> continue := false);
        if now t > before then incr pauses
      done;
      if !pauses > 0 then t.trunc_last_pause_us <- now t;
      if !steps > 0 then begin
        Histogram.observe t.h_trunc_pause (now t -. t0);
        Histogram.observe t.h_trunc_steps (float_of_int !steps)
      end
    end
  end

let diagnose t reason =
  Format.asprintf
    "scheduler stuck (%s): iter=%d now=%.0fus runnable=%d parked=%d \
     retries=%d pending_reads=%d batch=%d inflight=%d queued=%d \
     committed=%d reads=%d shed=%d aborts=%d wait_edges=%s"
    reason t.iterations (now t)
    (Queue.length t.runnable)
    (List.length t.parked)
    (List.length t.retries)
    (List.length t.pending_reads)
    (Batcher.size t.batch) (Admission.inflight t.adm) (Admission.queued t.adm)
    t.committed t.reads t.shed t.aborts
    (String.concat ";"
       (List.map
          (fun (o, bs) ->
            Printf.sprintf "%d->[%s]" o
              (String.concat "," (List.map string_of_int bs)))
          (Lock_mgr.wait_edges t.lm)))

let next_event_at t =
  match (Arrivals.next_at t.arr, t.retries) with
  | Some a, (d, _) :: _ -> Some (Float.min a d)
  | Some a, [] -> Some a
  | None, (d, _) :: _ -> Some d
  | None, [] -> None

let run t =
  let rec loop () =
    t.iterations <- t.iterations + 1;
    if t.iterations > t.cfg.max_iterations then
      raise (Stuck (diagnose t "iteration budget exhausted"));
    t.on_quantum ();
    process_due t;
    admit_from_queue t;
    background_truncation t;
    if Batcher.full t.batch then begin
      flush_batch t;
      loop ()
    end
    else if not (Queue.is_empty t.runnable) then begin
      let r = Queue.pop t.runnable in
      (match r.Request.status with
      | Request.Running -> exec t r
      | _ -> raise (Stuck (diagnose t "non-running request in run queue")));
      loop ()
    end
    else if not (Batcher.is_empty t.batch) then begin
      (* No request can advance before the next timed event: close the
         partial batch now rather than letting latency ride on arrivals. *)
      flush_batch t;
      loop ()
    end
    else if t.pending_reads <> [] then begin
      (* Only parked lookups remain: their dependencies are spooled
         commits with no batch left to close, so force the engine and
         release them. *)
      t.eng.Engine.flush ();
      complete_reads t;
      if t.pending_reads <> [] then
        raise (Stuck (diagnose t "pending reads survived a force"));
      loop ()
    end
    else
      match next_event_at t with
      | Some at ->
        if at > now t then Clock.advance_to t.clock at;
        loop ()
      | None ->
        if
          Queue.is_empty t.runnable && t.parked = []
          && Admission.queued t.adm = 0
        then () (* drained: every request committed or shed *)
        else raise (Stuck (diagnose t "no timed event and no runnable work"))
  in
  loop ();
  {
    committed = t.committed;
    reads = t.reads;
    shed = t.shed;
    aborts = t.aborts;
    batches = t.batches;
    backpressure_deferrals = t.backpressure_deferrals;
    latencies_us = Array.of_list (List.rev t.latencies);
    read_latencies_us = Array.of_list (List.rev t.read_latencies);
    end_us = now t;
    iterations = t.iterations;
  }
