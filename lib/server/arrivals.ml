module Rng = Rvm_util.Rng

(* Exponential inter-arrival draw with mean [mean] microseconds. The
   uniform is taken from [0, 1); flip to (0, 1] before the log so the
   draw is always finite. *)
let exp_draw rng ~mean = -.log (1. -. Rng.float rng 1.0) *. mean

type t =
  | Open of {
      mean_gap_us : float;
      rng : Rng.t;
      mutable next_at : float;
      mutable left : int;
    }
  | Closed of {
      think_us : float;
      rng : Rng.t;
      mutable pending : float list;  (* sorted ascending *)
      mutable left : int;
    }

let open_loop ?(start_us = 0.) ~rate_tps ~requests ~rng () =
  if rate_tps <= 0. then invalid_arg "Arrivals.open_loop: rate";
  if requests < 0 then invalid_arg "Arrivals.open_loop: requests";
  let mean_gap_us = 1e6 /. rate_tps in
  Open
    {
      mean_gap_us;
      rng;
      next_at = start_us +. exp_draw rng ~mean:mean_gap_us;
      left = requests;
    }

let closed_loop ?(start_us = 0.) ~sessions ~think_us ~requests ~rng () =
  if sessions <= 0 then invalid_arg "Arrivals.closed_loop: sessions";
  if requests < 0 then invalid_arg "Arrivals.closed_loop: requests";
  (* Each session draws its first think time from [start_us], so the
     initial burst is staggered the same way steady state is. *)
  let first =
    List.init (min sessions requests) (fun _ ->
        start_us +. exp_draw rng ~mean:think_us)
    |> List.sort compare
  in
  Closed { think_us; rng; pending = first; left = requests }

let next_at = function
  | Open o -> if o.left > 0 then Some o.next_at else None
  | Closed c -> (
    if c.left <= 0 then None
    else match c.pending with [] -> None | at :: _ -> Some at)

let pop t =
  match t with
  | Open o ->
    if o.left <= 0 then None
    else begin
      let at = o.next_at in
      o.left <- o.left - 1;
      o.next_at <- at +. exp_draw o.rng ~mean:o.mean_gap_us;
      Some at
    end
  | Closed c -> (
    if c.left <= 0 then None
    else
      match c.pending with
      | [] -> None
      | at :: rest ->
        c.left <- c.left - 1;
        c.pending <- rest;
        Some at)

let complete t ~now =
  match t with
  | Open _ -> ()
  | Closed c ->
    (* The session thinks, then issues its next request — but only while
       arrivals remain to be issued beyond those already pending. *)
    if c.left > List.length c.pending then begin
      let at = now +. exp_draw c.rng ~mean:c.think_us in
      let rec insert = function
        | [] -> [ at ]
        | x :: rest when x <= at -> x :: insert rest
        | rest -> at :: rest
      in
      c.pending <- insert c.pending
    end

let exhausted t = next_at t = None
