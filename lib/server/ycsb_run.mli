(** The YCSB harness: the server's second workload, running the standard
    key-value mixes A–F ({!Rvm_workload.Ycsb}) against a recoverable
    B-tree ({!Rvm_pds.Pbtree}) in an {!Rvm_alloc.Rds} heap, through the
    same scheduler/admission/arrival machinery as the TPC-A {!Server}.

    One call builds the world (latency-wrapped log and segment devices
    over the dec5000 model, optional {!Rvm_vm.Vm_sim} paging pressure),
    bulk-loads [records] keys off the clock, serves the seeded mix
    through the scheduler's workload plug, and reduces to a {!result}
    row that includes a serial-reference verdict: the committed
    operations replayed in commit order against a plain hash table must
    reproduce the tree's final contents byte-for-byte.

    Locking is node-granular where the tree's shape is stable (mixes
    A/B/C/F lock the key's leaf) and tree-granular where inserts can
    split nodes (D/E); read-modify-write upgrades Shared to Exclusive on
    its leaf, and upgrade deadlocks resolve through the scheduler's
    abort-retry path. *)

type config = {
  mix : Rvm_workload.Ycsb.mix;
  records : int;  (** initial key population, loaded before the run *)
  value_len : int;
  scan_max : int;
  degree : int;  (** B-tree minimum degree *)
  requests : int;
  seed : int64;
  load : Server.load;
  batch_max : int;
  max_inflight : int;
  max_queue : int;
  backpressure : float;
  backoff_base_us : float;
  cpu_per_op_us : float;
  log_size : int;
  mem_fraction : float;
      (** physical frames as a fraction of the heap's pages; outside
          (0, 1) disables the paging simulation *)
  background_truncation : bool;
  elr : bool;
}

val default_config : config

type result = {
  cfg : config;
  committed : int;
  shed : int;
  aborts : int;
  abort_rate : float;
  batches : int;
  duration_us : float;
  throughput_tps : float;
  mean_latency_us : float;
  p50_latency_us : float;
  p95_latency_us : float;
  p99_latency_us : float;
  log_writes : int;
  log_syncs : int;
  syncs_per_commit : float;
  vm_faults : int;
  vm_evictions : int;
  vm_pageouts : int;
  heap_allocated_bytes : int;
  heap_free_bytes : int;
  heap_free_list : int;
  tree_length : int;
  splits : int;
  merges : int;
  serial_equal : bool;
      (** tree contents equal the serial replay of committed ops *)
}

type world = {
  rvm : Rvm_core.Rvm.t;
  engine : Engine.t;
  clock : Rvm_util.Clock.t;
  obs : Rvm_obs.Registry.t;
  heap : Rvm_alloc.Rds.t;
  tree : Rvm_pds.Pbtree.t;
  vm : Rvm_vm.Vm_sim.t option;
  log_dev : Rvm_disk.Device.t;
}

val build_world : config -> world
(** Devices, engine, heap, tree and bulk load, all under a suspended
    clock; paging counters are reset so the run starts cold-measured but
    warm-resident. *)

val run : config -> result

val run_with_world : config -> result * world
(** [run], but also hands back the world for inspection (heap occupancy,
    registry counters, the tree itself). *)

val sweep : base:config -> Rvm_workload.Ycsb.mix list -> result list

val result_to_json : result -> Rvm_obs.Json.t
val pp_table : Format.formatter -> result list -> unit
