type config = {
  max_inflight : int;
  max_queue : int;
  backpressure : float;
}

let default = { max_inflight = 8; max_queue = 16; backpressure = 0.9 }

let validate c =
  if c.max_inflight <= 0 then invalid_arg "Admission: max_inflight";
  if c.max_queue < 0 then invalid_arg "Admission: max_queue";
  if c.backpressure <= 0. then invalid_arg "Admission: backpressure"

type 'a t = {
  cfg : config;
  queue : 'a Queue.t;
  obs : Rvm_obs.Registry.t option;
  mutable inflight : int;
  mutable double_releases : int;
}

let create ?obs cfg =
  validate cfg;
  { cfg; queue = Queue.create (); obs; inflight = 0; double_releases = 0 }

let config t = t.cfg
let inflight t = t.inflight
let queued t = Queue.length t.queue
let double_releases t = t.double_releases

let has_capacity t ~pressure =
  t.inflight < t.cfg.max_inflight && pressure < t.cfg.backpressure

let submit t ~pressure x =
  if Queue.is_empty t.queue && has_capacity t ~pressure then begin
    t.inflight <- t.inflight + 1;
    `Admitted
  end
  else if Queue.length t.queue < t.cfg.max_queue then begin
    Queue.push x t.queue;
    `Queued
  end
  else `Overload

let pop_ready t ~pressure =
  if Queue.is_empty t.queue then `Empty
  else if t.inflight >= t.cfg.max_inflight then `At_capacity
  else if pressure >= t.cfg.backpressure then `Backpressure
  else begin
    t.inflight <- t.inflight + 1;
    `Admit (Queue.pop t.queue)
  end

(* Shed and abort paths can both try to return the same slot (a request
   shed after its abort already released). Releasing a drained pipeline is
   therefore a countable event, not a crash: raising here took the whole
   server loop down. *)
let release t =
  if t.inflight <= 0 then begin
    t.double_releases <- t.double_releases + 1;
    Option.iter
      (fun obs ->
        Rvm_obs.Counter.incr
          (Rvm_obs.Registry.counter obs "admission.double_release"))
      t.obs
  end
  else t.inflight <- t.inflight - 1
