type config = {
  max_inflight : int;
  max_queue : int;
  backpressure : float;
}

let default = { max_inflight = 8; max_queue = 16; backpressure = 0.9 }

let validate c =
  if c.max_inflight <= 0 then invalid_arg "Admission: max_inflight";
  if c.max_queue < 0 then invalid_arg "Admission: max_queue";
  if c.backpressure <= 0. then invalid_arg "Admission: backpressure"

type 'a t = {
  cfg : config;
  queue : 'a Queue.t;
  mutable inflight : int;
}

let create cfg =
  validate cfg;
  { cfg; queue = Queue.create (); inflight = 0 }

let config t = t.cfg
let inflight t = t.inflight
let queued t = Queue.length t.queue

let has_capacity t ~pressure =
  t.inflight < t.cfg.max_inflight && pressure < t.cfg.backpressure

let submit t ~pressure x =
  if Queue.is_empty t.queue && has_capacity t ~pressure then begin
    t.inflight <- t.inflight + 1;
    `Admitted
  end
  else if Queue.length t.queue < t.cfg.max_queue then begin
    Queue.push x t.queue;
    `Queued
  end
  else `Overload

let pop_ready t ~pressure =
  if Queue.is_empty t.queue then `Empty
  else if t.inflight >= t.cfg.max_inflight then `At_capacity
  else if pressure >= t.cfg.backpressure then `Backpressure
  else begin
    t.inflight <- t.inflight + 1;
    `Admit (Queue.pop t.queue)
  end

let release t =
  if t.inflight <= 0 then invalid_arg "Admission.release: nothing in flight";
  t.inflight <- t.inflight - 1
