(** The transaction server harness: one call builds a complete simulated
    world — dec5000 cost model, latency-wrapped log and segment devices,
    an engine instance, a TPC-A layout, the lock manager, admission
    control and the scheduler — runs a seeded load against it, and
    reduces the outcome to a {!result} row. Two results from equal
    configs are byte-identical: every stochastic choice (request mix,
    Zipf keys, arrival times, backoff jitter) flows from [seed] through
    split {!Rvm_util.Rng} streams, and all timing is simulated. *)

type load =
  | Open_loop of float  (** Poisson arrivals at this offered tps *)
  | Closed_loop of { sessions : int; think_us : float }

val load_name : load -> string

val percentile : float array -> float -> float
(** Nearest-rank percentile over a sorted sample array (shared with the
    YCSB harness so both workloads reduce latencies identically). *)

type config = {
  accounts : int;
  shards : int;
      (** 1 = the single-log engine (byte-identical to the pre-shard
          server); N > 1 = the sharded multi-log engine with account [i]
          on shard [i mod N], tellers/branches/audit co-located with their
          account (Payments single-shard, Transfers cross-shard when their
          accounts land on different shards) *)
  zipf_s : float;  (** account-key skew exponent *)
  transfer_pct : int;  (** % of requests that are two-account transfers *)
  requests : int;
  seed : int64;
  load : load;
  batch_max : int;  (** 1 = unbatched: every commit forces the log *)
  max_inflight : int;
  max_queue : int;
  backpressure : float;  (** spool-pressure admission threshold *)
  backoff_base_us : float;
  cpu_per_op_us : float;
  log_size : int;
  trace_capacity : int;  (** 0 = tracing off *)
  spool_max_bytes : int option;  (** engine spool watermark override *)
  log_spool_max_bytes : int option;  (** log tail watermark override *)
  background_truncation : bool;
      (** true (default): the engine's inline commit-path truncation
          trigger is disabled and the scheduler reclaims the log from its
          background slot, a few resumable steps per quantum; false:
          classic inline behavior — the commit that crosses the threshold
          pays the whole truncation synchronously *)
  elr : bool;
      (** true (default): early lock release — batched commits drop their
          locks at commit-spool time, acks still wait for the force;
          false: locks ride until the batch force (the contended
          baseline) *)
  read_pct : int;
      (** % of requests that are read-only balance lookups served from
          the version-cache snapshot fast path (default 0) *)
}

val default_config : config
(** 1000 accounts, Zipf s=0.8, 25% transfers, 400 requests, open loop at
    40 tps, batch 8, admission 8/16 with backpressure at 0.9. *)

type result = {
  cfg : config;
  committed : int;  (** write requests committed (lookups counted apart) *)
  reads : int;  (** lookups answered from the snapshot fast path *)
  shed : int;
  aborts : int;
  abort_rate : float;  (** aborts / (aborts + committed), 0 if none *)
  batches : int;
  backpressure_deferrals : int;
  duration_us : float;
  throughput_tps : float;  (** committed writes per second *)
  mean_latency_us : float;
  p50_latency_us : float;  (** exact (nearest-rank over raw samples) *)
  p95_latency_us : float;
  p99_latency_us : float;
  read_p99_latency_us : float;  (** lookup ack latency, 0 when no reads *)
  snapshot_read_fraction : float;  (** reads / (reads + committed) *)
  log_writes : int;  (** summed over the physical log devices *)
  log_syncs : int;
  syncs_per_commit : float;  (** the group-commit payoff metric *)
  writes_per_commit : float;
  cross_committed : int;  (** parallel-commit transactions (0 unsharded) *)
  cross_aborted : int;  (** cross-shard deadlock/early aborts *)
  cross_abort_rate : float;  (** aborted / (committed + aborted), 0 if none *)
}

val run : config -> result

(** {1 Monitored runs}

    Same world, same scheduler, plus windowed telemetry and SLO
    monitoring: a {!Rvm_obs.Timeseries} over the world's registry
    (window default 500ms simulated), gauges for spool pressure, log
    occupancy, the commit/durable LSN horizons and truncation-due, and
    an {!Rvm_obs.Monitor} ticked from the scheduler's quantum hook. The
    monitoring path only reads the clock, so a monitored run's {!result}
    is byte-identical to a bare {!run} of the same config. *)

val default_window_us : float

val run_monitored :
  ?window_us:float ->
  ?rules:Rvm_obs.Monitor.rule list ->
  ?on_window:(Rvm_obs.Monitor.t -> Rvm_obs.Timeseries.window -> unit) ->
  config ->
  result * Rvm_obs.Monitor.t
(** [rules] defaults to {!Rvm_obs.Monitor.default_rules} (with the
    shard-imbalance rule when [cfg.shards > 1]); [on_window] streams
    every closed window as the run progresses (the [serve --monitor]
    health line). *)

(** {1 Open-world entry points}

    Tests need the pieces: the registry (to check [req.root] parents
    [txn.commit]), the engine and placement (to check final balances
    against the serial reference), the raw tally. *)

type backend = Single of Rvm_core.Rvm.t | Sharded of Rvm_shard.Multi.t

type world = {
  engine : Engine.t;
  backend : backend;
  clock : Rvm_util.Clock.t;
  obs : Rvm_obs.Registry.t;
  placement : Placement.t;
  log_devs : Rvm_disk.Device.t array;
      (** outermost log devices — their [stats] count physical
          writes/syncs; one element per shard *)
}

val build_world : config -> world
val scheduler_of : config -> world -> Scheduler.t

val run_with_world : config -> world * Scheduler.tally
(** {!run} without the reduction: build, run, hand everything back. *)

val sweep :
  base:config -> loads:load list -> batch_sizes:int list -> result list
(** The saturation grid: every load crossed with every batch size, rows
    in [loads]-major order. *)

val result_to_json : result -> Rvm_obs.Json.t
val pp_table : Format.formatter -> result list -> unit
