(** The transaction server harness: one call builds a complete simulated
    world — dec5000 cost model, latency-wrapped log and segment devices,
    an engine instance, a TPC-A layout, the lock manager, admission
    control and the scheduler — runs a seeded load against it, and
    reduces the outcome to a {!result} row. Two results from equal
    configs are byte-identical: every stochastic choice (request mix,
    Zipf keys, arrival times, backoff jitter) flows from [seed] through
    split {!Rvm_util.Rng} streams, and all timing is simulated. *)

type load =
  | Open_loop of float  (** Poisson arrivals at this offered tps *)
  | Closed_loop of { sessions : int; think_us : float }

val load_name : load -> string

type config = {
  accounts : int;
  zipf_s : float;  (** account-key skew exponent *)
  transfer_pct : int;  (** % of requests that are two-account transfers *)
  requests : int;
  seed : int64;
  load : load;
  batch_max : int;  (** 1 = unbatched: every commit forces the log *)
  max_inflight : int;
  max_queue : int;
  backpressure : float;  (** spool-pressure admission threshold *)
  backoff_base_us : float;
  cpu_per_op_us : float;
  log_size : int;
  trace_capacity : int;  (** 0 = tracing off *)
  spool_max_bytes : int option;  (** engine spool watermark override *)
  log_spool_max_bytes : int option;  (** log tail watermark override *)
}

val default_config : config
(** 1000 accounts, Zipf s=0.8, 25% transfers, 400 requests, open loop at
    40 tps, batch 8, admission 8/16 with backpressure at 0.9. *)

type result = {
  cfg : config;
  committed : int;
  shed : int;
  aborts : int;
  batches : int;
  backpressure_deferrals : int;
  duration_us : float;
  throughput_tps : float;
  mean_latency_us : float;
  p50_latency_us : float;  (** exact (nearest-rank over raw samples) *)
  p95_latency_us : float;
  p99_latency_us : float;
  log_writes : int;  (** at the physical log device *)
  log_syncs : int;
  syncs_per_commit : float;  (** the group-commit payoff metric *)
  writes_per_commit : float;
}

val run : config -> result

(** {1 Open-world entry points}

    Tests need the pieces: the registry (to check [req.root] parents
    [txn.commit]), the engine and layout (to check final balances against
    the serial reference), the raw tally. *)

type world = {
  rvm : Rvm_core.Rvm.t;
  clock : Rvm_util.Clock.t;
  obs : Rvm_obs.Registry.t;
  layout : Rvm_workload.Tpca.layout;
  log_outer : Rvm_disk.Device.t;
      (** outermost log device — its [stats] count physical writes/syncs *)
}

val build_world : config -> world
val scheduler_of : config -> world -> Scheduler.t

val run_with_world : config -> world * Scheduler.tally
(** {!run} without the reduction: build, run, hand everything back. *)

val sweep :
  base:config -> loads:load list -> batch_sizes:int list -> result list
(** The saturation grid: every load crossed with every batch size, rows
    in [loads]-major order. *)

val result_to_json : result -> Rvm_obs.Json.t
val pp_table : Format.formatter -> result list -> unit
