module Tpca = Rvm_workload.Tpca

type t = {
  shards : int;
  layouts : Tpca.layout array;
  audit_cursors : int array;
}

let make ~layouts =
  let shards = Array.length layouts in
  if shards <= 0 then invalid_arg "Placement.make: no layouts";
  { shards; layouts; audit_cursors = Array.make shards 0 }

let shards t = t.shards
let layout t s = t.layouts.(s)
let account_shard t i = i mod t.shards

let account_addr t i =
  Tpca.account_addr t.layouts.(account_shard t i) (i / t.shards)

let teller_addr t ~anchor teller =
  Tpca.teller_addr t.layouts.(account_shard t anchor) teller

let branch_addr t ~anchor branch =
  Tpca.branch_addr t.layouts.(account_shard t anchor) branch

let teller_id t ~anchor teller = (account_shard t anchor * Tpca.tellers) + teller
let branch_id t ~anchor branch = (account_shard t anchor * Tpca.branches) + branch

let audit_next t ~anchor =
  let s = account_shard t anchor in
  let l = t.layouts.(s) in
  let slot = t.audit_cursors.(s) in
  t.audit_cursors.(s) <- (slot + 1) mod l.Tpca.audit_entries;
  Tpca.audit_addr l slot
