(** Per-key last-committed versions for lock-free snapshot reads.

    One entry per balance cell, keyed by the same string key the lock
    manager uses: the value the last {e committed} writer left, the
    logical commit LSN it committed at, and the writer's request id.

    The invariants the scheduler maintains:

    - A cell is {e primed} with its pre-image (LSN 0, writer -1) the
      first time any transaction writes it — before the write — so a
      concurrent reader never sees an uncommitted in-place value.
    - Committed values are {e published} at commit-spool time, while the
      writer still holds its locks; only then are the locks released.
      A reader therefore always finds the latest committed version, never
      a dirty one.
    - LSNs are assigned in commit order, so each key's entry is monotone
      in [lsn].

    A read over several keys at one scheduler quantum is an atomic
    snapshot (the simulation is cooperative single-threaded): taking the
    max of the observed LSNs gives the read's ack dependency. *)

type version = {
  value : int64;  (** last committed balance *)
  lsn : int;  (** commit LSN of the writer; 0 for the pre-image *)
  writer : int;  (** request id of the writer; -1 for the pre-image *)
}

type t

val create : unit -> t

val prime : t -> key:string -> value:int64 -> unit
(** Record the pre-image before a cell's first write. No-op when the key
    already has a version (only the first writer primes). *)

val put : t -> key:string -> value:int64 -> lsn:int -> writer:int -> unit
(** Publish a committed version (called at commit-spool, before the
    writer's locks release). *)

val find : t -> key:string -> version option
(** The latest committed version; [None] only for cells never written,
    whose durable image is safe to read directly. *)

val size : t -> int
