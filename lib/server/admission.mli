(** Admission control: bounded concurrency, bounded queueing, explicit
    load shedding.

    Two caps and one signal: at most [max_inflight] transactions execute
    concurrently; arrivals beyond that wait in a FIFO of depth at most
    [max_queue]; anything further is refused outright ([`Overload] — the
    caller reports it to the client rather than letting latency grow
    without bound). Admission from the queue additionally stops while the
    engine's unflushed-commit backlog ({!Rvm_core.Rvm.spool_pressure})
    sits above the [backpressure] fraction: new work would only amplify a
    drain that is already due. *)

type config = {
  max_inflight : int;  (** concurrent transactions cap (> 0) *)
  max_queue : int;  (** waiting-request cap (>= 0) *)
  backpressure : float;
      (** spool-pressure threshold above which queued work is held back *)
}

val default : config
(** 8 in flight, 16 queued, backpressure at 0.9. *)

type 'a t

val create : ?obs:Rvm_obs.Registry.t -> config -> 'a t
(** Raises [Invalid_argument] on a nonsensical config. With [obs],
    double releases bump the [admission.double_release] counter. *)

val config : 'a t -> config
val inflight : 'a t -> int
val queued : 'a t -> int

val double_releases : 'a t -> int
(** Times {!release} was called on a drained pipeline (no slot in
    flight). Shed/abort races make this reachable; it is counted, not
    fatal. *)

val submit : 'a t -> pressure:float -> 'a -> [ `Admitted | `Queued | `Overload ]
(** Offer an arriving request. [`Admitted] takes an in-flight slot
    immediately (only when the queue is empty — FIFO order is never
    bypassed); [`Queued] parks it; [`Overload] sheds it. *)

val pop_ready :
  'a t -> pressure:float -> [ `Admit of 'a | `Empty | `At_capacity | `Backpressure ]
(** Admit the head of the queue if a slot is free and pressure allows.
    The non-[`Admit] results say why nothing was admitted — [`Backpressure]
    is counted by the server as a deferral. *)

val release : 'a t -> unit
(** Return an in-flight slot (request committed or aborted for good).
    Idempotent on a drained pipeline: a release with nothing in flight is
    counted (see {!double_releases}) rather than raised. *)
