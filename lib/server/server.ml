module Clock = Rvm_util.Clock
module Cost_model = Rvm_util.Cost_model
module Rng = Rvm_util.Rng
module Mem_device = Rvm_disk.Mem_device
module Device = Rvm_disk.Device
module Stack = Rvm_disk.Stack
module Rvm = Rvm_core.Rvm
module Options = Rvm_core.Options
module Multi = Rvm_shard.Multi
module Routing = Rvm_shard.Routing
module Lock_mgr = Rvm_layers.Lock_mgr
module Tpca = Rvm_workload.Tpca
module Registry = Rvm_obs.Registry
module Json = Rvm_obs.Json

type load = Open_loop of float | Closed_loop of { sessions : int; think_us : float }

let load_name = function
  | Open_loop tps -> Printf.sprintf "open:%.6gtps" tps
  | Closed_loop { sessions; think_us } ->
    Printf.sprintf "closed:%dx%.6gus" sessions think_us

type config = {
  accounts : int;
  shards : int;
  zipf_s : float;
  transfer_pct : int;
  requests : int;
  seed : int64;
  load : load;
  batch_max : int;
  max_inflight : int;
  max_queue : int;
  backpressure : float;
  backoff_base_us : float;
  cpu_per_op_us : float;
  log_size : int;
  trace_capacity : int;
  spool_max_bytes : int option;
  log_spool_max_bytes : int option;
  background_truncation : bool;
  elr : bool;
  read_pct : int;
}

let default_config =
  {
    accounts = 1_000;
    shards = 1;
    zipf_s = 0.8;
    transfer_pct = 25;
    requests = 400;
    seed = 42L;
    load = Open_loop 40.;
    batch_max = Scheduler.default_config.Scheduler.batch_max;
    max_inflight = Admission.default.Admission.max_inflight;
    max_queue = Admission.default.Admission.max_queue;
    backpressure = Admission.default.Admission.backpressure;
    backoff_base_us = Scheduler.default_config.Scheduler.backoff_base_us;
    cpu_per_op_us = Scheduler.default_config.Scheduler.cpu_per_op_us;
    log_size = 4 * 1024 * 1024;
    trace_capacity = 0;
    spool_max_bytes = None;
    log_spool_max_bytes = None;
    background_truncation = true;
    elr = true;
    read_pct = 0;
  }

type result = {
  cfg : config;
  committed : int;
  reads : int;
  shed : int;
  aborts : int;
  abort_rate : float;
  batches : int;
  backpressure_deferrals : int;
  duration_us : float;
  throughput_tps : float;
  mean_latency_us : float;
  p50_latency_us : float;
  p95_latency_us : float;
  p99_latency_us : float;
  read_p99_latency_us : float;
  snapshot_read_fraction : float;
  log_writes : int;
  log_syncs : int;
  syncs_per_commit : float;
  writes_per_commit : float;
  cross_committed : int;
  cross_aborted : int;
  cross_abort_rate : float;
}

(* Exact percentile over the raw latency samples (nearest-rank), not the
   histogram's power-of-two buckets — sweeps compare configurations, so
   bucket-quantization noise matters. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let page_size = 4096

type backend = Single of Rvm.t | Sharded of Multi.t

type world = {
  engine : Engine.t;
  backend : backend;
  clock : Clock.t;
  obs : Registry.t;
  placement : Placement.t;
  log_devs : Device.t array;  (* stats at the physical-device layer *)
}

let options_of cfg =
  let o = Options.default in
  (* With the scheduler driving truncation from its background slot, the
     inline commit-path trigger must stay quiet — otherwise a commit that
     tips occupancy over the threshold pays a full synchronous truncation
     instead of letting the slot amortize it. *)
  let o = { o with Options.auto_truncate = not cfg.background_truncation } in
  (* Incremental mode (Figure 7), not epoch: the server's reclamation
     must be pausable. An epoch run's freeze re-reads the whole live
     window through the log device (the recovery scanner) in one step —
     seconds of charged reads at 1993 transfer rates, unsplittable from
     the scheduler's point of view. The incremental page queue is
     maintained online at commit time, so its steps only write pages
     already in memory; epoch remains the blocked-queue critical
     fallback. *)
  let o = { o with Options.truncation_mode = Rvm_core.Types.Incremental } in
  let o =
    match cfg.spool_max_bytes with
    | Some v -> { o with Options.spool_max_bytes = v }
    | None -> o
  in
  match cfg.log_spool_max_bytes with
  | Some v -> { o with Options.log_spool_max_bytes = v }
  | None -> o

(* Shard s holds the accounts with index ≡ s (mod shards) plus its own
   teller array, branch array and audit trail, in its own segment on its
   own data disk — so a Payment is always single-shard and a Transfer
   crosses exactly when its two accounts interleave onto different
   shards. *)
let shard_layouts cfg =
  let n = cfg.shards in
  let next_base = ref (16 * page_size) in
  Array.init n (fun s ->
      let accts = (cfg.accounts + n - 1 - s) / n in
      let l = Tpca.layout ~accounts:accts ~base:!next_base ~page_size in
      next_base := !next_base + l.Tpca.total_len + (16 * page_size);
      l)

let build_world cfg =
  if cfg.shards < 1 then invalid_arg "Server: shards must be positive";
  if cfg.shards > cfg.accounts then
    invalid_arg "Server: more shards than accounts";
  let clock = Clock.simulated () in
  let model = Cost_model.dec5000 in
  let obs = Registry.create ~trace_capacity:cfg.trace_capacity () in
  let options = options_of cfg in
  let seg_stack dev =
    Stack.compose
      [ Stack.with_latency ~seek_fraction:0.08 ~sector:page_size ~clock
          ~disk:model.Cost_model.data_disk () ]
      dev
  in
  (* World construction — formatting the logs, cold recovery scans,
     mapping the segments in — is setup, not served load: suspend the
     clock so the sweep measures steady-state serving from t=0 and the
     per-shard recovery reads don't bill the sharded configurations for
     scanning [shards] times as many log devices. *)
  Clock.suspend clock @@ fun () ->
  if cfg.shards = 1 then begin
    let base_vaddr = 16 * page_size in
    let layout =
      Tpca.layout ~accounts:cfg.accounts ~base:base_vaddr ~page_size
    in
    let seg_size = layout.Tpca.total_len + page_size in
    let log_outer =
      Stack.compose
        [ Stack.with_latency ~clock ~disk:model.Cost_model.log_disk () ]
        (Mem_device.create ~name:"log" ~size:cfg.log_size ())
    in
    let seg_dev = seg_stack (Mem_device.create ~name:"seg" ~size:seg_size ()) in
    Rvm.create_log log_outer;
    let rvm =
      Rvm.initialize ~options ~clock ~model ~obs ~log:log_outer
        ~resolve:(fun _ -> seg_dev)
        ()
    in
    ignore
      (Rvm.map rvm ~vaddr:base_vaddr ~seg:1 ~seg_off:0
         ~len:layout.Tpca.total_len ());
    {
      engine = Engine.of_rvm rvm;
      backend = Single rvm;
      clock;
      obs;
      placement = Placement.make ~layouts:[| layout |];
      log_devs = [| log_outer |];
    }
  end
  else begin
    let n = cfg.shards in
    let layouts = shard_layouts cfg in
    let logs =
      Array.init n (fun s ->
          Stack.compose
            [ Stack.with_latency ~clock ~disk:model.Cost_model.log_disk () ]
            (Mem_device.create
               ~name:("log" ^ string_of_int s)
               ~size:cfg.log_size ()))
    in
    let segs =
      Array.init n (fun s ->
          seg_stack
            (Mem_device.create
               ~name:("seg" ^ string_of_int s)
               ~size:(layouts.(s).Tpca.total_len + page_size)
               ()))
    in
    let routing =
      Routing.of_table ~shards:n (List.init n (fun s -> (s + 1, s)))
    in
    Multi.create_logs logs;
    let m =
      Multi.initialize ~options ~clock ~model ~obs ~routing ~logs
        ~resolve:(fun seg -> segs.(seg - 1))
        ()
    in
    Array.iteri
      (fun s (l : Tpca.layout) ->
        ignore
          (Multi.map m ~vaddr:l.Tpca.base ~seg:(s + 1) ~seg_off:0
             ~len:l.Tpca.total_len ()))
      layouts;
    {
      engine = Engine.of_multi m;
      backend = Sharded m;
      clock;
      obs;
      placement = Placement.make ~layouts;
      log_devs = logs;
    }
  end

let scheduler_of cfg w =
  let rng = Rng.create ~seed:cfg.seed in
  let gen_rng = Rng.split rng in
  let arrival_rng = Rng.split rng in
  let backoff_rng = Rng.split rng in
  let gen =
    Request.make_gen ~read_pct:cfg.read_pct ~accounts:cfg.accounts
      ~zipf_s:cfg.zipf_s ~transfer_pct:cfg.transfer_pct ~rng:gen_rng ()
  in
  let start_us = Clock.now_us w.clock in
  let arrivals =
    match cfg.load with
    | Open_loop rate_tps ->
      Arrivals.open_loop ~start_us ~rate_tps ~requests:cfg.requests
        ~rng:arrival_rng ()
    | Closed_loop { sessions; think_us } ->
      Arrivals.closed_loop ~start_us ~sessions ~think_us
        ~requests:cfg.requests ~rng:arrival_rng ()
  in
  let admission =
    Admission.create ~obs:w.obs
      {
        Admission.max_inflight = cfg.max_inflight;
        max_queue = cfg.max_queue;
        backpressure = cfg.backpressure;
      }
  in
  let scfg =
    {
      Scheduler.default_config with
      Scheduler.batch_max = cfg.batch_max;
      backoff_base_us = cfg.backoff_base_us;
      cpu_per_op_us = cfg.cpu_per_op_us;
      background_truncation = cfg.background_truncation;
      elr = cfg.elr;
    }
  in
  Scheduler.create ~cfg:scfg ~engine:w.engine ~clock:w.clock ~obs:w.obs
    ~lock_mgr:(Lock_mgr.create ()) ~placement:w.placement ~admission ~arrivals
    ~gen ~rng:backoff_rng ()

let log_totals w =
  Array.fold_left
    (fun (ws, ss) (d : Device.t) ->
      (ws + d.Device.stats.Device.writes, ss + d.Device.stats.Device.syncs))
    (0, 0) w.log_devs

let reduce cfg w tally ~log_writes ~log_syncs =
  let cross_committed, cross_aborted =
    match w.backend with
    | Single _ -> (0, 0)
    | Sharded m -> (Multi.cross_committed m, Multi.cross_aborted m)
  in
  let lat = Array.copy tally.Scheduler.latencies_us in
  Array.sort compare lat;
  let rlat = Array.copy tally.Scheduler.read_latencies_us in
  Array.sort compare rlat;
  let n = Array.length lat in
  let committed = tally.Scheduler.committed in
  let reads = tally.Scheduler.reads in
  let per c = if committed = 0 then 0. else float_of_int c /. float_of_int committed in
  {
    cfg;
    committed;
    reads;
    shed = tally.Scheduler.shed;
    aborts = tally.Scheduler.aborts;
    abort_rate =
      (let total = tally.Scheduler.aborts + committed in
       if total = 0 then 0.
       else float_of_int tally.Scheduler.aborts /. float_of_int total);
    batches = tally.Scheduler.batches;
    backpressure_deferrals = tally.Scheduler.backpressure_deferrals;
    duration_us = tally.Scheduler.end_us;
    throughput_tps =
      (if tally.Scheduler.end_us > 0. then
         float_of_int committed /. (tally.Scheduler.end_us /. 1e6)
       else 0.);
    mean_latency_us =
      (if n = 0 then 0. else Array.fold_left ( +. ) 0. lat /. float_of_int n);
    p50_latency_us = percentile lat 50.;
    p95_latency_us = percentile lat 95.;
    p99_latency_us = percentile lat 99.;
    read_p99_latency_us = percentile rlat 99.;
    snapshot_read_fraction =
      (let total = reads + committed in
       if total = 0 then 0. else float_of_int reads /. float_of_int total);
    log_writes;
    log_syncs;
    syncs_per_commit = per log_syncs;
    writes_per_commit = per log_writes;
    cross_committed;
    cross_aborted;
    cross_abort_rate =
      (let total = cross_committed + cross_aborted in
       if total = 0 then 0.
       else float_of_int cross_aborted /. float_of_int total);
  }

let run cfg =
  let w = build_world cfg in
  let sched = scheduler_of cfg w in
  let writes0, syncs0 = log_totals w in
  let tally = Scheduler.run sched in
  (* Leave any final no-flush residue where the run left it: syncs are
     attributed per committed request, and the scheduler always closes its
     last batch before the arrival process drains. *)
  let writes1, syncs1 = log_totals w in
  reduce cfg w tally ~log_writes:(writes1 - writes0)
    ~log_syncs:(syncs1 - syncs0)

(* {2 Monitored runs}

   The monitor reads the same registry the engine already reports into;
   the extra wiring is gauges (instantaneous signals that have no
   counter) plus the scheduler's quantum hook driving the windowing
   tick. Nothing here charges the simulated clock, so a monitored run
   is byte-identical to a bare one. *)

module Timeseries = Rvm_obs.Timeseries
module Monitor = Rvm_obs.Monitor

let register_gauges w ts =
  let eng = w.engine in
  Timeseries.gauge ts "spool.pressure" eng.Engine.spool_pressure;
  Timeseries.gauge ts "log.occupancy" eng.Engine.log_occupancy;
  Timeseries.gauge ts "lsn.commit" (fun () ->
      float_of_int (eng.Engine.commit_lsn ()));
  Timeseries.gauge ts "lsn.durable" (fun () ->
      float_of_int (eng.Engine.durable_lsn ()));
  Timeseries.gauge ts "truncation.due" (fun () ->
      if eng.Engine.truncation_due () then 1. else 0.)

let default_window_us = 500_000.

let monitor_of ?(window_us = default_window_us) ?rules w =
  let rules =
    match rules with
    | Some r -> r
    | None -> Monitor.default_rules ~shards:w.engine.Engine.shards ()
  in
  let ts = Timeseries.create ~window_us w.obs in
  register_gauges w ts;
  Monitor.create ~rules ts w.obs

let run_monitored ?window_us ?rules ?(on_window = fun _ _ -> ()) cfg =
  let w = build_world cfg in
  let sched = scheduler_of cfg w in
  let mon = monitor_of ?window_us ?rules w in
  Scheduler.set_on_quantum sched (fun () ->
      List.iter (on_window mon) (Monitor.tick mon ~now_us:(Clock.now_us w.clock)));
  let writes0, syncs0 = log_totals w in
  let tally = Scheduler.run sched in
  List.iter (on_window mon) (Monitor.finish mon ~now_us:(Clock.now_us w.clock));
  let writes1, syncs1 = log_totals w in
  let result =
    reduce cfg w tally ~log_writes:(writes1 - writes0)
      ~log_syncs:(syncs1 - syncs0)
  in
  (result, mon)

let run_with_world cfg =
  let w = build_world cfg in
  let sched = scheduler_of cfg w in
  let tally = Scheduler.run sched in
  (w, tally)

let sweep ~base ~loads ~batch_sizes =
  List.concat_map
    (fun load ->
      List.map
        (fun batch_max -> run { base with load; batch_max })
        batch_sizes)
    loads

let result_to_json r =
  let c = r.cfg in
  Json.Obj
    [
      ("load", Json.String (load_name c.load));
      ( "offered_tps",
        match c.load with
        | Open_loop tps -> Json.Float tps
        | Closed_loop _ -> Json.Null );
      ("shards", Json.Int c.shards);
      ("batch_max", Json.Int c.batch_max);
      ("requests", Json.Int c.requests);
      ("seed", Json.Int (Int64.to_int c.seed));
      ("zipf_s", Json.Float c.zipf_s);
      ("elr", Json.Bool c.elr);
      ("read_pct", Json.Int c.read_pct);
      ("committed", Json.Int r.committed);
      ("reads", Json.Int r.reads);
      ("shed", Json.Int r.shed);
      ("aborts", Json.Int r.aborts);
      ("abort_rate", Json.Float r.abort_rate);
      ("batches", Json.Int r.batches);
      ("backpressure_deferrals", Json.Int r.backpressure_deferrals);
      ("duration_us", Json.Float r.duration_us);
      ("throughput_tps", Json.Float r.throughput_tps);
      ("mean_latency_us", Json.Float r.mean_latency_us);
      ("p50_latency_us", Json.Float r.p50_latency_us);
      ("p95_latency_us", Json.Float r.p95_latency_us);
      ("p99_latency_us", Json.Float r.p99_latency_us);
      ("read_p99_latency_us", Json.Float r.read_p99_latency_us);
      ("snapshot_read_fraction", Json.Float r.snapshot_read_fraction);
      ("log_writes", Json.Int r.log_writes);
      ("log_syncs", Json.Int r.log_syncs);
      ("syncs_per_commit", Json.Float r.syncs_per_commit);
      ("writes_per_commit", Json.Float r.writes_per_commit);
      ("cross_committed", Json.Int r.cross_committed);
      ("cross_aborted", Json.Int r.cross_aborted);
      ("cross_abort_rate", Json.Float r.cross_abort_rate);
    ]

let pp_table fmt results =
  Format.fprintf fmt
    "%-18s %6s %5s | %9s %9s %6s %6s %7s | %9s %9s %9s | %9s %5s@\n" "load"
    "shards" "batch" "committed" "tps" "shed" "abort" "defer" "p50(ms)"
    "p95(ms)" "p99(ms)" "syncs/txn" "cross";
  Format.fprintf fmt "%s@\n" (String.make 124 '-');
  List.iter
    (fun r ->
      Format.fprintf fmt
        "%-18s %6d %5d | %9d %9.1f %6d %6d %7d | %9.2f %9.2f %9.2f | %9.3f \
         %5d@\n"
        (load_name r.cfg.load) r.cfg.shards r.cfg.batch_max r.committed
        r.throughput_tps r.shed r.aborts r.backpressure_deferrals
        (r.p50_latency_us /. 1e3)
        (r.p95_latency_us /. 1e3)
        (r.p99_latency_us /. 1e3)
        r.syncs_per_commit r.cross_committed)
    results
