(** Shard-aware placement of the TPC-A working set.

    One {!Rvm_workload.Tpca.layout} per shard, each holding an interleaved
    slice of the accounts (account [i] lives on shard [i mod shards], at
    local index [i / shards]) plus that shard's own full teller array,
    branch array and audit trail. A Payment touches only structures
    co-located with its account, so it commits single-shard; a Transfer
    whose two accounts route to different shards is the cross-shard case.

    With one layout this degenerates to the unsharded server byte for
    byte: identical addresses, identical lock identities, one audit
    cursor. *)

type t

val make : layouts:Rvm_workload.Tpca.layout array -> t
val shards : t -> int
val layout : t -> int -> Rvm_workload.Tpca.layout

val account_shard : t -> int -> int
val account_addr : t -> int -> int

val teller_addr : t -> anchor:int -> int -> int
(** Address of teller [i] on the shard of account [anchor]. *)

val branch_addr : t -> anchor:int -> int -> int

val teller_id : t -> anchor:int -> int -> int
(** Globally unique lock identity of that teller record (distinct shards
    hold distinct teller records for the same index). *)

val branch_id : t -> anchor:int -> int -> int

val audit_next : t -> anchor:int -> int
(** Draw the next audit-trail slot on [anchor]'s shard (advancing that
    shard's wrap-around cursor) and return its address. *)
