(** The cooperative transaction scheduler — the server's core loop.

    Requests execute as step lists (exclusive lock acquisitions
    interleaved with the recoverable-memory updates they protect) under
    the engine's [Restore]-mode transactions. A request runs until it
    commits, parks on a lock ({!Rvm_layers.Lock_mgr.wait_for} returning
    [`Wait]), or loses a deadlock ([`Deadlock] → abort, release all
    locks, retry after seeded jittered exponential backoff). Parked
    requests wake whenever any lock is released; wake order is by request
    id, so a seeded run schedules identically every time.

    Commits route through the {!Batcher}: with [batch_max = 1] each
    commit forces the log itself; otherwise ready transactions commit
    [No_flush] immediately and the closing {!Engine.t.flush} fires when
    the batch fills or no other request can make progress. Each request's
    life is wrapped in a [req.root] span, so the engine's [txn.commit]
    spans nest under the request that caused them.

    {b Early lock release} ([elr], on by default): a batched commit drops
    its locks the moment its record reaches the log spool — redo-only
    logging has no cascading undo, so commit order is fixed there — and
    only the {e acknowledgement} waits for the batch force. Released
    locks carry a (commit LSN, writer) stamp; a successor acquiring a
    stamped key inherits it as an ack dependency, and {!run} enforces
    that no request finishes while its own commit LSN or any inherited
    dependency sits above the engine's durable horizon. With
    [elr = false] locks ride until the force, which is the contended
    baseline `bench contention` measures against.

    {b Snapshot reads}: [Lookup] requests never enter the step loop or
    the wait-for graph. They resolve each cell through the per-key
    version cache (pre-image primed before a cell's first write,
    committed values published at commit-spool under their LSN), take the
    max observed LSN as their ack dependency, and complete immediately if
    the durable horizon covers it — otherwise they park in a pending-read
    list that drains at every force.

    Everything advances the simulated clock: lock and update steps charge
    [cpu_per_op_us] each, device time comes from the engine's cost model,
    and idle gaps skip to the next arrival or retry deadline via
    {!Rvm_util.Clock.advance_to}.

    The loop also owns a background-task slot: when the engine reports
    truncation due, up to [truncation_steps_per_quantum] resumable
    truncator steps run between scheduling decisions (doubled under
    spool pressure, charged to the clock's background lane); when the
    engine reports it urgent the slot falls back to one synchronous
    truncation. Pauses land in the [truncation.pause.us] and
    [truncation.steps.per.quantum] histograms. *)

exception Stuck of string
(** The loop proved it can make no progress (or exceeded its iteration
    budget): the message carries a full state dump including the wait-for
    graph. Raised rather than hung — the no-hang property test depends on
    it. *)

type config = {
  batch_max : int;  (** commit batch bound; 1 = unbatched *)
  backoff_base_us : float;  (** first-retry backoff before jitter *)
  backoff_cap : int;  (** max doublings of the backoff base *)
  cpu_per_op_us : float;  (** CPU charge per lock/update step *)
  max_iterations : int;  (** hang guard for property tests *)
  truncation_steps_per_quantum : int;
      (** background truncator steps per scheduling quantum that may
          charge device time (sync/force steps); steps that charge
          nothing — write-back page writes — run up to 16x this cap for
          free, so a fragmented plan drains in bursts without stalling
          the quantum *)
  truncation_spool_trigger : float;
      (** spool pressure at which the step budget doubles *)
  truncation_min_gap_us : float;
      (** minimum simulated time between device-charging truncation
          bursts; spreads one reclaim cycle's syncs and forces across
          the cycle instead of clustering them into a single effective
          stall (halved under spool pressure; ignored when truncation
          is urgent) *)
  background_truncation : bool;
      (** false disables the background slot entirely (the engine's
          inline commit-path trigger is then expected to reclaim) *)
  elr : bool;
      (** release locks at commit-spool time (stamped, ack-deferred)
          instead of at the batch force; no effect when [batch_max = 1] *)
}

val default_config : config

type tally = {
  committed : int;  (** write requests committed (lookups not included) *)
  reads : int;  (** lookups answered *)
  shed : int;
  aborts : int;  (** deadlock aborts (every one is retried) *)
  batches : int;  (** log forces issued for commits *)
  backpressure_deferrals : int;
  latencies_us : float array;  (** per committed request, commit order *)
  read_latencies_us : float array;  (** per answered lookup, ack order *)
  end_us : float;  (** simulated completion time *)
  iterations : int;
}

type t

(** {1 Workload steps}

    The executable form of a request: lock acquisitions interleaved with
    the work they cover, consumed one step per scheduler quantum. TPC-A
    requests compile to [Lock]/[Update] steps internally; other workloads
    supply their own step lists through the [plug] — [Lock] steps at
    whatever key granularity the workload chooses (the YCSB layer locks
    B-tree leaf nodes), and [Run] closures that execute against the
    workload's own recoverable state with all previously acquired locks
    held, inside the request's engine transaction. A [`Deadlock] on any
    [Lock] step aborts the transaction and re-enters the full step list
    after backoff, so plugged workloads inherit the abort-retry path
    unchanged. *)

type update =
  | Upd_account of int * int64
  | Upd_teller of int * int64
  | Upd_branch of int * int64
  | Upd_audit

type step =
  | Lock of Rvm_layers.Lock_mgr.mode * string
  | Update of update
  | Run of (Request.t -> int -> unit)
      (** [Run f] calls [f request engine_tid] in one quantum *)

val create :
  ?plug:(Request.spec -> step list) ->
  cfg:config ->
  engine:Engine.t ->
  clock:Rvm_util.Clock.t ->
  obs:Rvm_obs.Registry.t ->
  lock_mgr:Rvm_layers.Lock_mgr.t ->
  placement:Placement.t ->
  admission:Request.t Admission.t ->
  arrivals:Arrivals.t ->
  gen:Request.gen ->
  rng:Rvm_util.Rng.t ->
  unit ->
  t
(** [rng] is the backoff-jitter stream; keep it distinct from the
    request-generator and arrival streams so the three draws never
    interleave nondeterministically. [plug] supplies the step lists for
    {!Request.Ycsb} requests (default: none, they commit vacuously). *)

val set_hooks :
  t -> on_spool:(Request.t -> unit) -> on_ack:(Request.t -> unit) -> unit
(** Instrumentation taps for the crash explorer. [on_spool] fires when a
    request's commit record reaches the spool (logical commit, locks
    about to release under ELR); [on_ack] fires when its outcome is
    released to the client — after durability for writes, after the
    dependency check for lookups. Defaults are no-ops. *)

val set_on_quantum : t -> (unit -> unit) -> unit
(** Hook fired once at the top of every scheduler quantum — the
    monitoring tick ({!Rvm_obs.Monitor.tick}), so windowed telemetry
    samples server, shards and truncator on the scheduler's own
    timeline. The hook must read the clock, never charge it: observation
    may not perturb the run it observes. Default is a no-op. *)

val run : t -> tally
(** Drive the loop until the arrival process is exhausted and every
    request has committed or been shed. Raises {!Stuck} if the loop
    wedges. *)
