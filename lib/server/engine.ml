module Rvm = Rvm_core.Rvm
module Multi = Rvm_shard.Multi
module Types = Rvm_core.Types

type t = {
  name : string;
  begin_txn : mode:Types.restore_mode -> int;
  set_range : int -> addr:int -> len:int -> unit;
  load : addr:int -> len:int -> Bytes.t;
  store : addr:int -> Bytes.t -> unit;
  end_txn : int -> mode:Types.commit_mode -> unit;
  abort : int -> unit;
  flush : unit -> unit;
  commit_lsn : unit -> int;
  durable_lsn : unit -> int;
  spool_pressure : unit -> float;
  log_occupancy : unit -> float;
  truncation_step : unit -> [ `Progress | `Blocked | `Idle ];
  truncation_due : unit -> bool;
  truncation_urgent : unit -> bool;
  truncate : unit -> unit;
  shards : int;  (* 1 for the single-log engine *)
}

let of_rvm rvm =
  {
    name = "rvm";
    begin_txn = (fun ~mode -> Rvm.begin_transaction rvm ~mode);
    set_range = (fun tid ~addr ~len -> Rvm.set_range rvm tid ~addr ~len);
    load = (fun ~addr ~len -> Rvm.load rvm ~addr ~len);
    store = (fun ~addr b -> Rvm.store rvm ~addr b);
    end_txn = (fun tid ~mode -> Rvm.end_transaction rvm tid ~mode);
    abort = (fun tid -> Rvm.abort_transaction rvm tid);
    flush = (fun () -> Rvm.flush rvm);
    commit_lsn = (fun () -> Rvm.commit_lsn rvm);
    durable_lsn = (fun () -> Rvm.durable_lsn rvm);
    spool_pressure = (fun () -> Rvm.spool_pressure rvm);
    log_occupancy = (fun () -> Rvm.log_occupancy rvm);
    truncation_step = (fun () -> Rvm.truncation_step rvm);
    truncation_due = (fun () -> Rvm.truncation_due rvm);
    truncation_urgent = (fun () -> Rvm.truncation_urgent rvm);
    truncate = (fun () -> Rvm.truncate rvm);
    shards = 1;
  }

(* The sharded engine already models one simulated worker core per shard
   (see {!Multi}): per-shard work runs on that shard's {!Clock.lane} and
   callers only block where the protocol demands — so this wrapper is
   plain delegation, like [of_rvm]. *)
let of_multi m =
  {
    name = Printf.sprintf "multi:%d" (Multi.shard_count m);
    begin_txn = (fun ~mode -> Multi.begin_transaction m ~mode);
    set_range = (fun tid ~addr ~len -> Multi.set_range m tid ~addr ~len);
    load = (fun ~addr ~len -> Multi.load m ~addr ~len);
    store = (fun ~addr b -> Multi.store m ~addr b);
    end_txn = (fun tid ~mode -> Multi.end_transaction m tid ~mode);
    abort = (fun tid -> Multi.abort_transaction m tid);
    flush = (fun () -> Multi.flush m);
    commit_lsn = (fun () -> Multi.commit_lsn m);
    durable_lsn = (fun () -> Multi.durable_lsn m);
    spool_pressure = (fun () -> Multi.spool_pressure m);
    log_occupancy = (fun () -> Multi.log_occupancy m);
    truncation_step = (fun () -> Multi.truncation_step m);
    truncation_due = (fun () -> Multi.truncation_due m);
    truncation_urgent = (fun () -> Multi.truncation_urgent m);
    truncate = (fun () -> Multi.truncate m);
    shards = Multi.shard_count m;
  }
